// Per-step training telemetry: the trainer fills one StepRecord per
// optimizer attempt — the per-step quantities the paper's analysis is
// about (gradient norms, clip fraction, noise stddevs, beta, SUR
// decisions, accumulated epsilon) — and hands it to a StepObserver.
// JsonlStepWriter serializes records to a JSONL file with a fixed key
// order and shortest-round-trip number formatting, so a run whose step
// values are thread-count invariant (the ParallelFor determinism
// contract) emits byte-identical telemetry at any --geodp_num_threads.

#ifndef GEODP_OBS_STEP_OBSERVER_H_
#define GEODP_OBS_STEP_OBSERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/flags.h"
#include "base/io/file_io.h"
#include "base/status.h"

namespace geodp {

/// Everything one training step reports. Doubles are exact values from
/// the step (no rounding); empty Poisson lots set `empty_lot` and leave
/// the gradient fields zero.
struct StepRecord {
  int64_t step = 0;           // accepted-update index this attempt targets
  int64_t attempt = 0;        // loop iteration (>= step under SUR retries)
  int64_t batch_size = 0;     // realized lot size (0 for an empty lot)
  bool empty_lot = false;     // Poisson draw selected no examples
  // Samples dropped this step because their loss/gradient was NaN or Inf
  // (optim/dp_sgd.h); they contribute zero gradient to the update.
  int64_t nonfinite_skipped = 0;
  double mean_loss = 0.0;     // mean per-sample loss (0 when empty_lot)
  double raw_grad_norm = 0.0;      // L2 of the averaged pre-clip gradient
  double clipped_grad_norm = 0.0;  // L2 of the averaged clipped gradient
  double clip_fraction = 0.0;      // share of samples with norm > C
  double magnitude_noise_stddev = 0.0;  // stddev on magnitude / coordinate
  double direction_noise_stddev = 0.0;  // stddev per angle (GeoDP family)
  double beta = 0.0;          // bounding factor used this step
  bool sur_enabled = false;
  bool sur_accepted = false;  // this attempt's decision (true without SUR)
  int64_t sur_accepted_total = 0;
  int64_t sur_rejected_total = 0;
  double epsilon = 0.0;        // accountant epsilon after this step
  int64_t rdp_order = 0;       // order achieving it (0 before any spend)
  int64_t accounted_steps = 0; // releases charged to the accountant
};

/// Hook invoked once per training step. Implementations must tolerate
/// being called from exactly one thread (the training loop).
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  virtual void OnStep(const StepRecord& record) = 0;

  /// False once this observer has lost data (e.g. its sink's writes keep
  /// failing). The trainer treats an unhealthy observer as a degraded run
  /// — training continues, the obs.degraded gauge flips — never a fatal
  /// error. Default: always healthy.
  virtual bool healthy() const { return true; }
};

/// Serializes a record as one deterministic JSON object (fixed key order,
/// FormatDouble numbers). Exposed for tests and custom sinks.
std::string StepRecordToJson(const StepRecord& record);

/// Buffers records in memory (tests, programmatic consumers).
class CollectingStepObserver : public StepObserver {
 public:
  void OnStep(const StepRecord& record) override { records_.push_back(record); }

  const std::vector<StepRecord>& records() const { return records_; }

 private:
  std::vector<StepRecord> records_;
};

/// Appends one JSON line per step to a file through RetryingWriter
/// (unbuffered, one write(2) per record) so telemetry survives a crashed
/// run. Transient write failures retry per the default RetryPolicy;
/// exhausted retries and permanent errnos (disk full) are never silent:
/// each dropped record bumps dropped_records() and the global
/// "obs.jsonl_write_errors" counter, the first failure sticks in
/// status(), and healthy() turns false so the trainer can mark the run
/// degraded instead of aborting. The "obs.jsonl" fail point injects
/// errnos into every physical open/write attempt.
class JsonlStepWriter : public StepObserver {
 public:
  explicit JsonlStepWriter(const std::string& path);
  ~JsonlStepWriter() override;

  void OnStep(const StepRecord& record) override;

  /// False once opening failed or any record was dropped.
  bool healthy() const override;

  /// Flushes and closes the file, folding any close-time error into
  /// status(). Idempotent; returns the final status. The destructor calls
  /// it, but callers that need to report telemetry loss should call it
  /// explicitly and check the result.
  const Status& Close();

  /// Ok unless the file could not be opened or a write/close failed.
  const Status& status() const;
  const std::string& path() const { return writer_.path(); }
  int64_t records_written() const { return records_written_; }
  /// Records lost to an unopened file or failed writes.
  int64_t dropped_records() const { return writer_.dropped_appends(); }

 private:
  RetryingWriter writer_;
  Status status_;
  int64_t records_written_ = 0;
};

/// Applies the observability flags registered by AddCommonFlags:
/// --geodp_trace_out enables global tracing to that path,
/// --geodp_profile_out enables the phase profiler (folded stacks flushed
/// there), --geodp_flight_recorder toggles the flight recorder, and
/// --geodp_metrics_out opens a per-step JSONL writer. Returns the writer
/// (nullptr when the flag is unset); the caller owns it and must keep it
/// alive while training runs with it attached.
std::unique_ptr<JsonlStepWriter> ApplyObservabilityFlags(
    const FlagParser& parser);

}  // namespace geodp

#endif  // GEODP_OBS_STEP_OBSERVER_H_
