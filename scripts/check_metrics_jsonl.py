#!/usr/bin/env python3
"""Validates a --geodp_metrics_out step-telemetry JSONL file.

Used by the CI bench-smoke job after a short CLI training run. Checks:
  * the file is non-empty and every line parses as a JSON object;
  * each record carries the required per-step keys;
  * attempts are consecutive from the first record's attempt and steps
    never go backwards (one record per attempt; under SUR a rejected
    attempt repeats its step). A resumed run's tail starts at a nonzero
    attempt, so only consecutiveness is required, not a zero origin;
  * epsilon-so-far is monotone non-decreasing (accountants only spend).

Exits 0 when the file passes, 1 with a diagnostic otherwise. Uses only
the standard library.

`--self-check` lints this script itself (pyflakes if available, else a
stdlib AST pass) so the CI static-analysis job covers the Python side too.
"""

import json
import sys

REQUIRED_KEYS = (
    "step",
    "attempt",
    "batch_size",
    "empty_lot",
    "nonfinite_skipped",
    "mean_loss",
    "raw_grad_norm",
    "clipped_grad_norm",
    "clip_fraction",
    "magnitude_noise_stddev",
    "direction_noise_stddev",
    "beta",
    "sur_enabled",
    "sur_accepted",
    "sur_accepted_total",
    "sur_rejected_total",
    "epsilon",
    "rdp_order",
    "accounted_steps",
)


def fail(message):
    print(f"check_metrics_jsonl: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def self_check():
    """Lints this file. Prefers pyflakes; falls back to compiling the AST
    with a duplicate-name scan so the check still bites where pyflakes is
    not installed."""
    import ast

    source_path = __file__
    try:
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        fail(f"self-check: cannot read {source_path}: {error}")

    try:
        from pyflakes.api import check as pyflakes_check
        from pyflakes.reporter import Reporter

        errors = pyflakes_check(
            source, source_path, Reporter(sys.stderr, sys.stderr)
        )
        if errors:
            fail(f"self-check: pyflakes reported {errors} problem(s)")
        print("check_metrics_jsonl: OK: self-check passed (pyflakes)")
        return
    except ImportError:
        pass

    try:
        tree = ast.parse(source, filename=source_path)
        compile(tree, source_path, "exec")
    except SyntaxError as error:
        fail(f"self-check: syntax error: {error}")
    top_level = [
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    duplicates = {name for name in top_level if top_level.count(name) > 1}
    if duplicates:
        fail(f"self-check: duplicate top-level definitions: {duplicates}")
    print("check_metrics_jsonl: OK: self-check passed (stdlib ast fallback)")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-check":
        self_check()
        return
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <metrics.jsonl> | --self-check")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as error:
        fail(f"cannot read {path}: {error}")
    if not lines:
        fail(f"{path} is empty")

    previous_epsilon = 0.0
    first_attempt = None
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"{path}:{number}: not valid JSON: {error}")
        if not isinstance(record, dict):
            fail(f"{path}:{number}: expected a JSON object")
        missing = [key for key in REQUIRED_KEYS if key not in record]
        if missing:
            fail(f"{path}:{number}: missing keys {missing}")
        if first_attempt is None:
            first_attempt = record["attempt"]
        expected_attempt = first_attempt + number - 1
        if record["attempt"] != expected_attempt:
            fail(
                f"{path}:{number}: attempt {record['attempt']} != "
                f"{expected_attempt} (one record per attempt, consecutive "
                f"from {first_attempt})"
            )
        if record["step"] > record["attempt"]:
            fail(f"{path}:{number}: step {record['step']} exceeds attempt")
        epsilon = record["epsilon"]
        if not isinstance(epsilon, (int, float)):
            fail(f"{path}:{number}: epsilon is not a number")
        if epsilon < previous_epsilon:
            fail(
                f"{path}:{number}: epsilon decreased "
                f"({previous_epsilon} -> {epsilon})"
            )
        previous_epsilon = epsilon

    print(f"check_metrics_jsonl: OK: {len(lines)} records, "
          f"final epsilon {previous_epsilon}")


if __name__ == "__main__":
    main()
