// geodp_cli — command-line front end for the library.
//
//   geodp_cli train   --model=lr|mlp|cnn|resnet --dataset=mnist|cifar
//                     --method=none|dp|geodp --sigma=1 --beta=0.01 ...
//   geodp_cli mse     --dim=512 --batch=256 --sigma=1 --beta=0.1 ...
//   geodp_cli privacy --sigma=1 --q=0.01 --steps=1000 --delta=1e-5
//   geodp_cli privacy --target-eps=4 --q=0.01 --steps=1000   (solves sigma)
//
// Run with no arguments for usage.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "base/fault_injection.h"
#include "base/flags.h"
#include "base/rng.h"
#include "base/simd/dispatch.h"
#include "core/privacy_region.h"
#include "data/gradient_dataset.h"
#include "data/synthetic_images.h"
#include "dp/analytic_gaussian.h"
#include "dp/calibration.h"
#include "models/cnn.h"
#include "models/logistic_regression.h"
#include "models/mlp.h"
#include "models/resnet.h"
#include "nn/checkpoint.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/step_observer.h"
#include "obs/trace.h"
#include "optim/trainer.h"
#include "stats/metrics.h"

namespace geodp {
namespace {

int Usage() {
  std::printf(
      "usage: geodp_cli <train|mse|privacy> [flags]\n"
      "  train   private training with none/DP/GeoDP on a synthetic dataset\n"
      "  mse     direction/gradient MSE of DP vs GeoDP on harvested "
      "gradients\n"
      "  privacy RDP accounting: epsilon for sigma, or sigma for a target "
      "epsilon\n");
  return 1;
}

int RunTrain(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("model", "lr", "lr | mlp | cnn | resnet");
  flags.AddString("dataset", "mnist", "mnist | cifar (synthetic stand-ins)");
  flags.AddString("method", "geodp", "none | dp | geodp");
  flags.AddDouble("sigma", 1.0, "noise multiplier");
  flags.AddDouble("beta", 0.01, "GeoDP bounding factor");
  flags.AddDouble("clip", 0.1, "clipping threshold C");
  flags.AddDouble("lr", 2.0, "learning rate");
  flags.AddInt("batch", 128, "batch size");
  flags.AddInt("iterations", 100, "training iterations");
  flags.AddInt("train-examples", 1000, "training set size");
  flags.AddInt("test-examples", 200, "test set size");
  flags.AddString("clipper", "flat", "flat | AUTO-S | PSAC");
  flags.AddString("geodp_clip_mode", "materialize",
                  "materialize | ghost (per-sample-gradient-free clipping)");
  flags.AddBool("is", false, "importance sampling");
  flags.AddBool("sur", false, "selective update and release");
  flags.AddBool("adam", false, "DP-Adam post-processing");
  flags.AddInt("seed", 1, "experiment seed");
  flags.AddString("save", "", "optional checkpoint output path");
  flags.AddString("geodp_checkpoint_dir", "",
                  "directory for crash-safe training checkpoints");
  flags.AddInt("geodp_checkpoint_every", 1,
               "attempts between checkpoints (with --geodp_checkpoint_dir)");
  flags.AddBool("geodp_resume", false,
                "resume from the newest valid checkpoint in "
                "--geodp_checkpoint_dir");
  flags.AddString("geodp_failpoint", "",
                  "comma-separated fault injection specs "
                  "<site>@<hit|p=prob>:<action> (crash | short_write | "
                  "bit_flip | eio | eintr | enospc | torn_rename | "
                  "stall:<ms>)");
  flags.AddInt("geodp_failpoint_seed", 0,
               "seed for probabilistic fail points (0 = built-in default; "
               "same seed + same spec = same firing schedule)");
  flags.AddInt("geodp_max_missed_checkpoints", 0,
               "consecutive failed checkpoint writes to skip before "
               "aborting (0 = strict: first failure aborts)");
  AddCommonFlags(flags);
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::printf("%s\n%s", status.ToString().c_str(),
                flags.HelpText().c_str());
    return 1;
  }
  ApplyCommonFlags(flags);
  std::printf("simd: %s kernels\n", SimdTierName(ActiveSimdTier()));
  const std::unique_ptr<JsonlStepWriter> step_writer =
      ApplyObservabilityFlags(flags);
  StatusOr<std::unique_ptr<IntrospectionHandle>> introspection =
      ApplyIntrospectionFlags(flags);
  if (!introspection.ok()) {
    std::printf("introspection: %s\n",
                introspection.status().ToString().c_str());
    return 1;
  }
  IntrospectionHandle* const http = introspection.value().get();
  if (http != nullptr) {
    std::printf("introspection: http://127.0.0.1:%d (/metrics /healthz "
                "/readyz /statusz /varz /profilez /flightz)\n",
                http->server->port());
  }

  const std::string dataset_name = flags.GetString("dataset");
  SyntheticImageOptions data_options;
  data_options.num_examples =
      flags.GetInt("train-examples") + flags.GetInt("test-examples");
  data_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  InMemoryDataset train = dataset_name == "cifar"
                              ? MakeCifarLike(data_options)
                              : MakeMnistLike(data_options);
  InMemoryDataset test = train.SplitTail(flags.GetInt("test-examples"));

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")) + 1);
  std::unique_ptr<Sequential> model;
  const std::string model_name = flags.GetString("model");
  const int64_t input_dim =
      train.image(0).numel();
  if (model_name == "lr") {
    model = MakeLogisticRegression(input_dim, 10, rng);
  } else if (model_name == "mlp") {
    MlpConfig config;
    config.input_dim = input_dim;
    model = MakeMlp(config, rng);
  } else if (model_name == "cnn") {
    CnnConfig config;
    config.in_channels = train.image(0).dim(0);
    config.image_size = train.image(0).dim(1);
    model = MakeCnn(config, rng);
  } else if (model_name == "resnet") {
    ResNetConfig config;
    config.in_channels = train.image(0).dim(0);
    config.image_size = train.image(0).dim(1);
    config.width = 4;
    model = MakeResNet(config, rng);
  } else {
    std::printf("unknown --model=%s\n", model_name.c_str());
    return 1;
  }

  TrainerOptions options;
  options.method = ParsePerturbationMethod(flags.GetString("method"));
  options.batch_size = flags.GetInt("batch");
  options.iterations = flags.GetInt("iterations");
  options.learning_rate = flags.GetDouble("lr");
  options.clip_threshold = flags.GetDouble("clip");
  options.noise_multiplier = flags.GetDouble("sigma");
  options.beta = flags.GetDouble("beta");
  options.clipper = flags.GetString("clipper");
  options.clip_mode = flags.GetString("geodp_clip_mode");
  options.importance_sampling = flags.GetBool("is");
  options.selective_update = flags.GetBool("sur");
  options.use_adam = flags.GetBool("adam");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed")) + 2;
  options.record_loss_every = std::max<int64_t>(options.iterations / 10, 1);
  options.step_observer = step_writer.get();
  if (http != nullptr) options.status_publisher = http->publisher.get();
  options.epsilon_budget = flags.GetDouble("geodp_epsilon_budget");
  options.max_missed_checkpoints =
      flags.GetInt("geodp_max_missed_checkpoints");
  options.stall_timeout_ms = flags.GetInt("geodp_stall_timeout_ms");
  const std::string checkpoint_dir = flags.GetString("geodp_checkpoint_dir");
  if (!checkpoint_dir.empty()) {
    options.checkpoint_dir = checkpoint_dir;
    options.checkpoint_every = flags.GetInt("geodp_checkpoint_every");
    if (flags.GetBool("geodp_resume")) options.resume_from = checkpoint_dir;
  }

  const Status failpoint_status =
      FaultInjector::ArmFromSpec(flags.GetString("geodp_failpoint"));
  if (!failpoint_status.ok()) {
    std::printf("%s\n", failpoint_status.ToString().c_str());
    return 1;
  }
  // SeedRng resets per-site hit counters, so seed after arming.
  const int64_t failpoint_seed = flags.GetInt("geodp_failpoint_seed");
  if (failpoint_seed != 0) {
    FaultInjector::Global().SeedRng(static_cast<uint64_t>(failpoint_seed));
  }

  DpTrainer trainer(model.get(), &train, &test, options);
  StatusOr<TrainingResult> run = trainer.Run();
  if (!run.ok()) {
    std::printf("train: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const TrainingResult& result = run.value();

  std::printf("model=%s dataset=%s method=%s sigma=%.3f beta=%.4f\n",
              model_name.c_str(), dataset_name.c_str(),
              flags.GetString("method").c_str(),
              options.noise_multiplier, options.beta);
  std::printf("final train loss : %.4f\n", result.final_train_loss);
  std::printf("test accuracy    : %.2f%%\n", result.test_accuracy * 100);
  std::printf("epsilon (RDP)    : %.3f at delta=1e-5\n", result.epsilon);
  if (result.nonfinite_skipped > 0) {
    std::printf("nonfinite samples: %lld skipped\n",
                static_cast<long long>(result.nonfinite_skipped));
  }
  for (size_t i = 0; i < result.loss_history.size(); ++i) {
    std::printf("  iter %5lld loss %.4f\n",
                static_cast<long long>(result.loss_iterations[i]),
                result.loss_history[i]);
  }

  if (step_writer != nullptr) {
    const Status writer_status = step_writer->Close();
    if (!writer_status.ok()) {
      // Telemetry loss degrades the run, it does not fail it: the model
      // and the spent epsilon are intact. Exit 0 with a grep-able marker
      // (the chaos harness and monitors key on "degraded").
      std::printf("metrics: degraded: %s (%lld record(s) dropped)\n",
                  writer_status.ToString().c_str(),
                  static_cast<long long>(step_writer->dropped_records()));
    } else {
      std::printf("metrics: %lld step records -> %s\n",
                  static_cast<long long>(step_writer->records_written()),
                  step_writer->path().c_str());
    }
  }
  if (TracingEnabled()) {
    const Status trace_status = FlushTrace();
    if (!trace_status.ok()) {
      std::printf("trace: degraded: %s\n", trace_status.ToString().c_str());
    } else {
      std::printf("trace: %lld events flushed\n",
                  static_cast<long long>(BufferedTraceEventCount()));
    }
  }
  if (ProfilingEnabled()) {
    const Status profile_status = FlushProfile();
    if (!profile_status.ok()) {
      std::printf("profile: degraded: %s\n",
                  profile_status.ToString().c_str());
    } else {
      std::printf("profile: folded stacks -> %s\n",
                  flags.GetString("geodp_profile_out").c_str());
    }
  }

  const std::string save_path = flags.GetString("save");
  if (!save_path.empty()) {
    const Status save_status = SaveCheckpoint(*model, save_path);
    std::printf("checkpoint: %s -> %s\n", save_path.c_str(),
                save_status.ToString().c_str());
    if (!save_status.ok()) return 1;
  }

  if (http != nullptr) {
    // Scrape-after-run window: CI curls the final /metrics and /statusz
    // deterministically instead of racing a short training run.
    const int64_t linger_ms = flags.GetInt("geodp_http_linger_ms");
    if (linger_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
    http->server->Stop();
  }
  return 0;
}

int RunMse(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddInt("dim", 512, "gradient dimensionality");
  flags.AddInt("batch", 256, "batch size B");
  flags.AddInt("trials", 24, "trials per strategy");
  flags.AddDouble("sigma", 1.0, "noise multiplier");
  flags.AddDouble("beta", 0.1, "GeoDP bounding factor");
  flags.AddDouble("clip", 0.1, "clipping threshold C");
  flags.AddInt("gradients", 256, "harvested gradient count");
  flags.AddInt("seed", 7, "seed");
  AddCommonFlags(flags);
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::printf("%s\n%s", status.ToString().c_str(),
                flags.HelpText().c_str());
    return 1;
  }
  ApplyCommonFlags(flags);

  GradientDatasetOptions harvest;
  harvest.num_gradients = flags.GetInt("gradients");
  harvest.dimension = flags.GetInt("dim");
  harvest.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const GradientDataset data = HarvestGradientDataset(harvest);

  PerturbationOptions base;
  base.clip_threshold = flags.GetDouble("clip");
  base.batch_size = flags.GetInt("batch");
  base.noise_multiplier = flags.GetDouble("sigma");
  const DpPerturber dp(base);
  GeoDpOptions geo_options;
  geo_options.base = base;
  geo_options.beta = flags.GetDouble("beta");
  const GeoDpPerturber geo(geo_options);

  const int trials = static_cast<int>(flags.GetInt("trials"));
  Rng sample_rng(11), dp_rng(12), geo_rng(12);
  std::vector<SphericalCoordinates> original, dp_dirs, geo_dirs;
  std::vector<Tensor> raw, dp_raw, geo_raw;
  for (int t = 0; t < trials; ++t) {
    Tensor avg = data.AverageClipped(base.batch_size, base.clip_threshold,
                                     sample_rng);
    Tensor dp_noisy = dp.Perturb(avg, dp_rng);
    Tensor geo_noisy = geo.Perturb(avg, geo_rng);
    original.push_back(ToSpherical(avg));
    dp_dirs.push_back(ToSpherical(dp_noisy));
    geo_dirs.push_back(ToSpherical(geo_noisy));
    raw.push_back(std::move(avg));
    dp_raw.push_back(std::move(dp_noisy));
    geo_raw.push_back(std::move(geo_noisy));
  }
  std::printf("d=%lld B=%lld sigma=%.3f beta=%.3f (%d trials)\n",
              static_cast<long long>(flags.GetInt("dim")),
              static_cast<long long>(base.batch_size),
              base.noise_multiplier, geo_options.beta, trials);
  std::printf("DP    theta MSE %.6e   g MSE %.6e\n",
              DirectionMse(original, dp_dirs), GradientMse(raw, dp_raw));
  std::printf("GeoDP theta MSE %.6e   g MSE %.6e\n",
              DirectionMse(original, geo_dirs), GradientMse(raw, geo_raw));
  return 0;
}

int RunPrivacy(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddDouble("sigma", 1.0, "noise multiplier (ignored with --target-eps)");
  flags.AddDouble("q", 0.01, "Poisson sampling rate");
  flags.AddInt("steps", 1000, "training iterations");
  flags.AddDouble("delta", 1e-5, "target delta");
  flags.AddDouble("target-eps", 0.0, "if > 0, solve for sigma instead");
  flags.AddDouble("beta", 1.0, "GeoDP bounding factor for the delta' report");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::printf("%s\n%s", status.ToString().c_str(),
                flags.HelpText().c_str());
    return 1;
  }
  const double delta = flags.GetDouble("delta");
  const double q = flags.GetDouble("q");
  const int64_t steps = flags.GetInt("steps");
  double sigma = flags.GetDouble("sigma");
  const double target_eps = flags.GetDouble("target-eps");
  if (target_eps > 0.0) {
    const StatusOr<double> solved =
        NoiseMultiplierForTargetEpsilon(Epsilon(target_eps), Delta(delta),
                                        SamplingRate(q), steps);
    if (!solved.ok()) {
      std::printf("%s\n", solved.status().ToString().c_str());
      return 1;
    }
    sigma = solved.value();
    std::printf("sigma for eps<=%.3f: %.4f\n", target_eps, sigma);
  }
  const StatusOr<double> run_epsilon =
      TrainingRunEpsilon(NoiseMultiplier(sigma), SamplingRate(q), steps,
                         Delta(delta));
  if (!run_epsilon.ok()) {
    std::printf("%s\n", run_epsilon.status().ToString().c_str());
    return 1;
  }
  std::printf("RDP epsilon(sigma=%.4f, q=%.4f, T=%lld, delta=%.1e) = %.4f\n",
              sigma, q, static_cast<long long>(steps), delta,
              run_epsilon.value());
  std::printf("single-release analytic-gaussian delta at eps=1: %.3e\n",
              AnalyticGaussianDelta(sigma, 1.0));
  const double beta = flags.GetDouble("beta");
  const GeoDpPrivacyReport report = AnalyzeGeoDpPrivacy(sigma, delta, beta);
  std::printf("GeoDP direction guarantee: (%.4f, %.1e + %.3f)-DP\n",
              report.epsilon, report.delta, report.delta_prime_upper_bound);
  return 0;
}

}  // namespace
}  // namespace geodp

int main(int argc, char** argv) {
  if (argc < 2) return geodp::Usage();
  const std::string command = argv[1];
  if (command == "train") return geodp::RunTrain(argc - 1, argv + 1);
  if (command == "mse") return geodp::RunMse(argc - 1, argv + 1);
  if (command == "privacy") return geodp::RunPrivacy(argc - 1, argv + 1);
  return geodp::Usage();
}
