// geodp_chaos — deterministic chaos-soak harness for the resilience layer.
//
// Epsilon spent by a DP training run is unrecoverable, so the resilience
// claim this repo makes is strong: kill the process at any step, tear any
// checkpoint write, fail any telemetry sink, and a resumed run must still
// produce the same weights, the same telemetry suffix, and the same final
// epsilon as a run that never faulted. This harness proves that claim by
// construction, N times, under seeded fault schedules.
//
// Each schedule runs geodp_cli four times in a scratch directory:
//
//   1. reference  — fault-free run of `iterations` steps; its JSONL
//                   telemetry, saved weights and printed epsilon are the
//                   ground truth.
//   2. faulted    — same run with checkpointing on, armed to crash
//                   (_Exit(87)) at a seeded step K plus one seeded
//                   probabilistic errno/corruption fault (EIO, EINTR,
//                   torn checkpoint payloads, prune failures, ...).
//   3. resume     — restarts from the newest good checkpoint and must
//                   finish cleanly.
//   4. degraded   — fault-free training but every telemetry write fails
//                   (obs.jsonl@p=1:eio); the run must still exit 0 with a
//                   "degraded" marker and byte-identical weights.
//
// Verdicts per schedule:
//   - faulted run exits with the crash code (87), resume exits 0;
//   - faulted telemetry is a byte-exact PREFIX of the reference and
//     resumed telemetry a byte-exact SUFFIX, with no gap between them
//     (an overlap is legal: a torn newest checkpoint makes resume fall
//     back one step and re-emit it identically);
//   - the kill left a parseable flight-recorder postmortem next to the
//     checkpoints whose recorded attempt and last step milestone equal
//     the attempt the resume actually restarted from;
//   - resumed weights are byte-identical to the reference weights;
//   - the printed "epsilon (RDP)" line matches the reference exactly —
//     no double-spent and no lost privacy budget;
//   - the degraded twin exits 0, prints the degraded marker, and its
//     weights are byte-identical to the reference.
//
// The --doctor flag is the canary that keeps the harness honest in CI: it
// extends the resume run by three extra iterations (the options
// fingerprint deliberately excludes the iteration count, so the trainer
// accepts the resume). A healthy harness MUST then fail; CI asserts
// `! geodp_chaos --doctor ...`.
//
// Everything is derived from --seed via Rng::Substream, so a given
// (seed, schedules, iterations) triple replays the exact same fault
// schedule on every machine.

#include <sys/wait.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "base/flags.h"
#include "base/io/file_io.h"
#include "base/rng.h"
#include "base/status.h"
#include "ckpt/checkpoint.h"

namespace geodp {
namespace {

constexpr int kCrashExitCode = 87;  // FaultInjector::kCrashExitCode

struct CmdResult {
  int exit_code = -1;
  std::string log;  // combined stdout+stderr of the child
};

// Runs `cmd` through the shell with stdout/stderr captured to `log_path`,
// returning the child's exit code (or 128+signal when it died on one).
CmdResult RunCommand(const std::string& cmd, const std::string& log_path) {
  CmdResult result;
  const std::string full = cmd + " > \"" + log_path + "\" 2>&1";
  const int raw = std::system(full.c_str());
  if (raw == -1) {
    result.exit_code = -1;
  } else if (WIFEXITED(raw)) {
    result.exit_code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    result.exit_code = 128 + WTERMSIG(raw);
  }
  const StatusOr<std::string> text = ReadFileWithRetry(log_path);
  if (text.ok()) result.log = text.value();
  return result;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// The "epsilon (RDP)    : ..." line the CLI prints, or "" if absent.
std::string EpsilonLine(const std::string& log) {
  for (const std::string& line : SplitLines(log)) {
    if (line.rfind("epsilon (RDP)", 0) == 0) return line;
  }
  return std::string();
}

std::string LastLogLines(const std::string& log, size_t n) {
  const std::vector<std::string> lines = SplitLines(log);
  std::string out;
  const size_t start = lines.size() > n ? lines.size() - n : 0;
  for (size_t i = start; i < lines.size(); ++i) out += "      " + lines[i] + "\n";
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

// One seeded errno/corruption fault layered on top of the crash. All of
// these are faults training must absorb without changing its trajectory:
// transient errnos are retried, torn checkpoint payloads are rejected at
// resume time by the CRC (falling back to the previous checkpoint), and
// prune failures only leak files.
struct ErrnoFault {
  const char* site;
  const char* action;
};

constexpr std::array<ErrnoFault, 7> kFaultPalette = {{
    {"ckpt.write_io", "eio"},       {"ckpt.write_io", "eintr"},
    {"obs.jsonl", "eio"},           {"obs.jsonl", "eintr"},
    {"ckpt.prune", "eio"},          {"ckpt.write", "short_write"},
    {"ckpt.write_io", "torn_rename"},
}};

struct ScheduleParams {
  int64_t crash_at = 0;       // trainer.step hit that _Exit(87)s
  std::string errno_spec;     // "<site>@p=<prob>:<action>"
  int64_t failpoint_seed = 0; // nonzero seed for the probabilistic arm
  int64_t train_seed = 0;     // experiment seed handed to the CLI
};

ScheduleParams DeriveSchedule(uint64_t root_seed, int64_t index,
                              int64_t iterations) {
  Rng rng = Rng::Substream(root_seed, static_cast<uint64_t>(index) + 1);
  ScheduleParams params;
  params.crash_at =
      1 + static_cast<int64_t>(
              rng.UniformInt(static_cast<uint64_t>(iterations - 1)));
  const ErrnoFault& fault =
      kFaultPalette[rng.UniformInt(kFaultPalette.size())];
  const double probability = 0.01 * (1 + rng.UniformInt(3));
  std::array<char, 128> spec;
  std::snprintf(spec.data(), spec.size(), "%s@p=%g:%s", fault.site,
                probability, fault.action);
  params.errno_spec = spec.data();
  params.failpoint_seed =
      static_cast<int64_t>(rng.Next() % 1000000007ull) + 1;
  params.train_seed = index + 1;
  return params;
}

struct ScheduleVerdict {
  int64_t index = 0;
  ScheduleParams params;
  std::vector<std::string> errors;
  bool passed() const { return errors.empty(); }
};

struct HarnessConfig {
  std::string cli;
  std::string workdir;
  int64_t iterations = 0;
  int64_t train_examples = 0;
  bool doctor = false;
};

// Reads a file that must exist and be byte-identical to `expect`.
void CheckFileEquals(const std::string& label, const std::string& path,
                     const std::string& expect,
                     std::vector<std::string>& errors) {
  const StatusOr<std::string> got = ReadFileWithRetry(path);
  if (!got.ok()) {
    errors.push_back(label + ": " + got.status().ToString());
    return;
  }
  if (got.value().empty()) {
    errors.push_back(label + ": " + path + " is empty");
    return;
  }
  if (got.value() != expect) {
    errors.push_back(label + ": " + path +
                     " differs from the reference bytes");
  }
}

// The flight recorder piggybacks a postmortem dump on every successful
// checkpoint (a _Exit(87) kill gets no chance to flush one), so after any
// kill the newest surviving checkpoint — the attempt training resumes
// from — has a postmortem describing exactly that attempt. Validates the
// file is complete JSON with the expected schema markers, its "attempt"
// equals `resume_point`, and its last recorded step milestone does too.
void CheckPostmortem(const std::string& ckpt_dir, int64_t resume_point,
                     std::vector<std::string>& errors) {
  const std::string path = ckpt_dir + "/" + PostmortemFileName(resume_point);
  const StatusOr<std::string> text = ReadFileWithRetry(path);
  if (!text.ok()) {
    errors.push_back("postmortem: " + text.status().ToString() +
                     " — every kill schedule must leave one at the resume "
                     "point");
    return;
  }
  const std::string& body = text.value();
  if (body.size() < 2 || body.front() != '{' ||
      body.compare(body.size() - 2, 2, "}\n") != 0) {
    errors.push_back("postmortem: " + path +
                     " is not a complete JSON object");
    return;
  }
  for (const char* needle :
       {"\"tool\":\"geodp\"", "\"kind\":\"postmortem\"", "\"events\":["}) {
    if (body.find(needle) == std::string::npos) {
      errors.push_back("postmortem: " + path + " lacks " + needle);
    }
  }
  if (body.find("\"attempt\":" + std::to_string(resume_point) + ",") ==
      std::string::npos) {
    errors.push_back("postmortem: " + path + " does not record attempt " +
                     std::to_string(resume_point));
  }
  if (body.find("\"last_milestone_step\":" + std::to_string(resume_point)) ==
      std::string::npos) {
    errors.push_back("postmortem: last recorded step in " + path +
                     " does not match the resume point " +
                     std::to_string(resume_point));
  }
}

ScheduleVerdict RunSchedule(const HarnessConfig& config, uint64_t root_seed,
                            int64_t index) {
  ScheduleVerdict verdict;
  verdict.index = index;
  verdict.params = DeriveSchedule(root_seed, index, config.iterations);
  const ScheduleParams& p = verdict.params;
  std::vector<std::string>& errors = verdict.errors;

  namespace fs = std::filesystem;
  const std::string dir =
      config.workdir + "/s" + std::to_string(index);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) {
    errors.push_back("cannot create " + dir + ": " + ec.message());
    return verdict;
  }

  const std::string common =
      config.cli + " train --iterations=" + std::to_string(config.iterations) +
      " --train-examples=" + std::to_string(config.train_examples) +
      " --seed=" + std::to_string(p.train_seed);
  const std::string ckpt_flags =
      " --geodp_checkpoint_dir=" + dir + "/ckpt --geodp_checkpoint_every=1";

  // 1. Fault-free reference: ground-truth telemetry, weights, epsilon.
  const CmdResult ref = RunCommand(
      common + " --geodp_metrics_out=" + dir + "/ref.jsonl --save=" + dir +
          "/ref.gdpc",
      dir + "/ref.log");
  if (ref.exit_code != 0) {
    errors.push_back("reference run exited " +
                     std::to_string(ref.exit_code) + ":\n" +
                     LastLogLines(ref.log, 5));
    return verdict;  // nothing to compare against
  }

  // 2. Faulted run: crash at step K plus the seeded errno fault.
  const CmdResult faulted = RunCommand(
      common + ckpt_flags + " --geodp_metrics_out=" + dir + "/part1.jsonl" +
          " --geodp_failpoint=trainer.step@" + std::to_string(p.crash_at) +
          ":crash," + p.errno_spec +
          " --geodp_failpoint_seed=" + std::to_string(p.failpoint_seed) +
          " --geodp_max_missed_checkpoints=2",
      dir + "/part1.log");
  if (faulted.exit_code != kCrashExitCode) {
    errors.push_back("faulted run should _Exit(" +
                     std::to_string(kCrashExitCode) + ") at step " +
                     std::to_string(p.crash_at) + ", exited " +
                     std::to_string(faulted.exit_code) + ":\n" +
                     LastLogLines(faulted.log, 5));
  }

  // 3. Resume: restart from the newest good checkpoint and finish. The
  //    --doctor canary extends the run by 3 iterations; the fingerprint
  //    excludes the iteration count so the trainer accepts it, and the
  //    harness MUST then flag the divergence below.
  std::string resume_cmd =
      config.cli + " train --iterations=" +
      std::to_string(config.iterations + (config.doctor ? 3 : 0)) +
      " --train-examples=" + std::to_string(config.train_examples) +
      " --seed=" + std::to_string(p.train_seed) + ckpt_flags +
      " --geodp_resume --geodp_metrics_out=" + dir + "/part2.jsonl" +
      " --save=" + dir + "/resume.gdpc";
  const CmdResult resume = RunCommand(resume_cmd, dir + "/part2.log");
  if (resume.exit_code != 0) {
    errors.push_back("resume run exited " +
                     std::to_string(resume.exit_code) + ":\n" +
                     LastLogLines(resume.log, 5));
    return verdict;
  }

  // Telemetry: faulted is a prefix, resume a suffix, no gap between them.
  const StatusOr<std::string> ref_jsonl =
      ReadFileWithRetry(dir + "/ref.jsonl");
  const StatusOr<std::string> part1_jsonl =
      ReadFileWithRetry(dir + "/part1.jsonl");
  const StatusOr<std::string> part2_jsonl =
      ReadFileWithRetry(dir + "/part2.jsonl");
  if (!ref_jsonl.ok() || !part1_jsonl.ok() || !part2_jsonl.ok()) {
    errors.push_back("missing telemetry file in " + dir);
    return verdict;
  }
  const std::vector<std::string> ref_lines = SplitLines(ref_jsonl.value());
  const std::vector<std::string> part1 = SplitLines(part1_jsonl.value());
  const std::vector<std::string> part2 = SplitLines(part2_jsonl.value());
  if (static_cast<int64_t>(ref_lines.size()) != config.iterations) {
    errors.push_back("reference telemetry has " +
                     std::to_string(ref_lines.size()) + " records, want " +
                     std::to_string(config.iterations));
  }
  if (part1.empty()) {
    errors.push_back("faulted run wrote no telemetry before the crash");
  }
  if (part1.size() > ref_lines.size()) {
    errors.push_back("faulted telemetry longer than the reference");
  } else {
    for (size_t i = 0; i < part1.size(); ++i) {
      if (part1[i] != ref_lines[i]) {
        errors.push_back("faulted telemetry record " + std::to_string(i + 1) +
                         " differs from the reference prefix");
        break;
      }
    }
  }
  if (part2.size() > ref_lines.size()) {
    errors.push_back("resumed telemetry longer than the reference (" +
                     std::to_string(part2.size()) + " vs " +
                     std::to_string(ref_lines.size()) + " records)");
  } else {
    const size_t offset = ref_lines.size() - part2.size();
    for (size_t i = 0; i < part2.size(); ++i) {
      if (part2[i] != ref_lines[offset + i]) {
        errors.push_back("resumed telemetry record " + std::to_string(i + 1) +
                         " differs from the reference suffix");
        break;
      }
    }
    if (part1.size() + part2.size() < ref_lines.size()) {
      errors.push_back(
          "telemetry gap: prefix(" + std::to_string(part1.size()) +
          ") + suffix(" + std::to_string(part2.size()) +
          ") < reference(" + std::to_string(ref_lines.size()) +
          ") — step records were lost across the crash");
    }
  }

  // Postmortem: the kill must have left one describing the attempt the
  // resume restarted from. That attempt is inferred from the resumed
  // suffix length (one telemetry record per attempt); a fresh-start
  // resume (no checkpoint survived) leaves nothing to validate.
  const int64_t resume_point = config.iterations +
                               (config.doctor ? 3 : 0) -
                               static_cast<int64_t>(part2.size());
  if (resume_point >= 1) {
    CheckPostmortem(dir + "/ckpt", resume_point, errors);
  }

  // Weights and epsilon: bit-identical to the uninterrupted run.
  const StatusOr<std::string> ref_weights =
      ReadFileWithRetry(dir + "/ref.gdpc");
  if (!ref_weights.ok()) {
    errors.push_back("reference weights: " +
                     ref_weights.status().ToString());
    return verdict;
  }
  CheckFileEquals("resumed weights", dir + "/resume.gdpc",
                  ref_weights.value(), errors);
  const std::string ref_epsilon = EpsilonLine(ref.log);
  if (ref_epsilon.empty()) {
    errors.push_back("reference run printed no epsilon line");
  } else if (EpsilonLine(resume.log) != ref_epsilon) {
    errors.push_back("epsilon mismatch after resume: \"" + ref_epsilon +
                     "\" vs \"" + EpsilonLine(resume.log) +
                     "\" — privacy budget double-spent or lost");
  }

  // 4. Degraded twin: every telemetry write fails, training must not care.
  const CmdResult degraded = RunCommand(
      common + " --geodp_failpoint=obs.jsonl@p=1:eio" +
          " --geodp_failpoint_seed=" + std::to_string(p.failpoint_seed) +
          " --geodp_metrics_out=" + dir + "/degraded.jsonl --save=" + dir +
          "/degraded.gdpc",
      dir + "/degraded.log");
  if (degraded.exit_code != 0) {
    errors.push_back("degraded twin exited " +
                     std::to_string(degraded.exit_code) +
                     " (telemetry loss must not fail training):\n" +
                     LastLogLines(degraded.log, 5));
  } else {
    if (degraded.log.find("metrics: degraded:") == std::string::npos) {
      errors.push_back("degraded twin printed no \"metrics: degraded:\" "
                       "marker");
    }
    CheckFileEquals("degraded-twin weights", dir + "/degraded.gdpc",
                    ref_weights.value(), errors);
    if (EpsilonLine(degraded.log) != ref_epsilon) {
      errors.push_back("degraded twin epsilon differs from the reference");
    }
  }
  return verdict;
}

int Run(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("cli", "", "path to the geodp_cli binary (required)");
  flags.AddInt("schedules", 10, "number of seeded fault schedules to soak");
  flags.AddInt("seed", 20260809,
               "root seed; every schedule is a deterministic substream of "
               "it (same seed = same faults on every machine)");
  flags.AddInt("iterations", 40, "training iterations per run");
  flags.AddInt("train-examples", 400, "training set size per run");
  flags.AddString("workdir", "chaos_work",
                  "scratch directory (one subdirectory per schedule; "
                  "failing schedules leave their logs behind)");
  flags.AddString("out", "",
                  "also write the machine-readable verdict JSON to this "
                  "path (empty = stdout only)");
  flags.AddBool("doctor", false,
                "canary mode: doctor the resume run with 3 extra "
                "iterations; a healthy harness MUST exit nonzero");
  flags.AddBool("keep", false,
                "keep all per-schedule scratch directories, even passing "
                "ones");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::printf("%s\n%s", parsed.ToString().c_str(),
                flags.HelpText().c_str());
    return 2;
  }
  const HarnessConfig config = {
      flags.GetString("cli"),
      flags.GetString("workdir"),
      flags.GetInt("iterations"),
      flags.GetInt("train-examples"),
      flags.GetBool("doctor"),
  };
  if (config.cli.empty()) {
    std::printf("--cli is required (path to geodp_cli)\n");
    return 2;
  }
  if (config.iterations < 2) {
    std::printf("--iterations must be >= 2 (need a step to crash at)\n");
    return 2;
  }
  const int64_t schedules = flags.GetInt("schedules");
  if (schedules < 1) {
    std::printf("--schedules must be >= 1\n");
    return 2;
  }
  const uint64_t root_seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<ScheduleVerdict> verdicts;
  int64_t failed = 0;
  for (int64_t i = 0; i < schedules; ++i) {
    ScheduleVerdict verdict = RunSchedule(config, root_seed, i);
    std::printf("schedule %2lld  crash@%-3lld %-28s %s\n",
                static_cast<long long>(i),
                static_cast<long long>(verdict.params.crash_at),
                verdict.params.errno_spec.c_str(),
                verdict.passed() ? "PASS" : "FAIL");
    for (const std::string& error : verdict.errors) {
      std::printf("    - %s\n", error.c_str());
    }
    if (!verdict.passed()) {
      ++failed;
    } else if (!flags.GetBool("keep")) {
      std::error_code ec;
      std::filesystem::remove_all(
          config.workdir + "/s" + std::to_string(i), ec);
    }
    verdicts.push_back(std::move(verdict));
  }

  std::ostringstream json;
  json << "{\"tool\":\"geodp_chaos\",\"seed\":" << root_seed
       << ",\"schedules\":" << schedules << ",\"iterations\":"
       << config.iterations << ",\"doctor\":"
       << (config.doctor ? "true" : "false") << ",\"passed\":"
       << (schedules - failed) << ",\"failed\":" << failed
       << ",\"results\":[";
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const ScheduleVerdict& v = verdicts[i];
    if (i > 0) json << ",";
    json << "{\"schedule\":" << v.index << ",\"crash_at\":"
         << v.params.crash_at << ",\"errno_spec\":\""
         << JsonEscape(v.params.errno_spec) << "\",\"failpoint_seed\":"
         << v.params.failpoint_seed << ",\"status\":\""
         << (v.passed() ? "pass" : "fail") << "\",\"errors\":[";
    for (size_t j = 0; j < v.errors.size(); ++j) {
      if (j > 0) json << ",";
      json << "\"" << JsonEscape(v.errors[j]) << "\"";
    }
    json << "]}";
  }
  json << "]}";
  std::printf("%s\n", json.str().c_str());
  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    const Status wrote = AtomicWriteFile(out_path, json.str() + "\n");
    if (!wrote.ok()) {
      std::printf("cannot write verdict to %s: %s\n", out_path.c_str(),
                  wrote.ToString().c_str());
      return 2;
    }
  }
  std::printf("chaos: %lld/%lld schedule(s) passed\n",
              static_cast<long long>(schedules - failed),
              static_cast<long long>(schedules));
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace geodp

int main(int argc, char** argv) { return geodp::Run(argc, argv); }
