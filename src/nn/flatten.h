// Flattens image activations into dense features.

#ifndef GEODP_NN_FLATTEN_H_
#define GEODP_NN_FLATTEN_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace geodp {

/// [B, d1, d2, ...] -> [B, d1*d2*...].
class Flatten : public Layer {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> input_shape_;
};

}  // namespace geodp

#endif  // GEODP_NN_FLATTEN_H_
