#include "optim/geodp_sgd.h"

#include "base/check.h"
#include "base/thread_pool.h"

namespace geodp {

PerturbationMethod ParsePerturbationMethod(const std::string& name) {
  if (name == "none") return PerturbationMethod::kNoiseFree;
  if (name == "dp") return PerturbationMethod::kDp;
  if (name == "geodp") return PerturbationMethod::kGeoDp;
  GEODP_CHECK(false) << "unknown perturbation method: " << name;
  return PerturbationMethod::kNoiseFree;
}

std::string PerturbationMethodName(PerturbationMethod method) {
  switch (method) {
    case PerturbationMethod::kNoiseFree:
      return "none";
    case PerturbationMethod::kDp:
      return "DP";
    case PerturbationMethod::kGeoDp:
      return "GeoDP";
  }
  return "?";
}

Tensor IdentityPerturber::Perturb(const Tensor& avg_clipped_gradient,
                                  Rng& /*rng*/) const {
  return avg_clipped_gradient;
}

std::unique_ptr<Perturber> MakePerturberForMethod(
    PerturbationMethod method, const PerturbationOptions& base, double beta,
    AngleHandling angle_handling) {
  switch (method) {
    case PerturbationMethod::kNoiseFree:
      return std::make_unique<IdentityPerturber>();
    case PerturbationMethod::kDp:
      return std::make_unique<DpPerturber>(base);
    case PerturbationMethod::kGeoDp: {
      GeoDpOptions options;
      options.base = base;
      options.beta = beta;
      options.angle_handling = angle_handling;
      return std::make_unique<GeoDpPerturber>(options);
    }
  }
  return nullptr;
}

std::vector<Tensor> BatchPerturb(const Perturber& perturber,
                                 const std::vector<Tensor>& gradients,
                                 Rng& rng) {
  std::vector<Tensor> noisy(gradients.size());
  const uint64_t root = rng.Next();
  ParallelFor(0, static_cast<int64_t>(gradients.size()), /*grain=*/1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  Rng stream =
                      Rng::Substream(root, static_cast<uint64_t>(i));
                  noisy[static_cast<size_t>(i)] = perturber.Perturb(
                      gradients[static_cast<size_t>(i)], stream);
                }
              });
  return noisy;
}

}  // namespace geodp
