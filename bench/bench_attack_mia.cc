// Privacy-in-practice check (paper §I motivation and §V-C2 claim):
// a loss-threshold membership-inference attack against models trained
// noise-free, with DP-SGD, and with GeoDP-SGD under the same sigma.
// Expected shape: the attack succeeds against the noise-free model
// (AUC > 0.5) and DP pushes it toward chance. GeoDP exposes the Lemma 2
// trade-off directly: its direction guarantee is (eps, delta + delta')
// with delta' <= 1 - beta, so tiny beta (great utility) leaves the
// direction nearly unprotected and the attack keeps succeeding, while
// larger beta restores protection at a utility cost. This is the
// empirical face of the paper's relaxed direction guarantee.

#include "attack/membership_inference.h"
#include "base/rng.h"
#include "common/bench_util.h"
#include "models/logistic_regression.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

struct AttackRow {
  std::string label;
  PerturbationMethod method;
  double sigma;
  double beta;
};

void Run() {
  PrintBanner(
      "Membership inference under DP vs GeoDP (supporting experiment)",
      "white-box MIA motivates DP-SGD (paper Sec. I); GeoDP claims equal "
      "protection with better utility (Sec. V-C2)",
      "Yeom-style loss-threshold attack on LR over 8x8 synthetic MNIST, "
      "80 members vs 80 non-members, 400 iterations (deliberate overfit)");

  SyntheticImageOptions options;
  options.num_examples = 160;
  options.height = 8;
  options.width = 8;
  options.pixel_noise = 0.3;
  options.seed = 31;
  InMemoryDataset members = MakeSyntheticImages(options);
  InMemoryDataset nonmembers = members.SplitTail(80);

  const std::vector<AttackRow> rows = {
      {"noise-free", PerturbationMethod::kNoiseFree, 0.0, 1.0},
      {"DP sigma=2", PerturbationMethod::kDp, 2.0, 1.0},
      {"DP sigma=4", PerturbationMethod::kDp, 4.0, 1.0},
      {"GeoDP sigma=2 beta=0.005", PerturbationMethod::kGeoDp, 2.0, 0.005},
      {"GeoDP sigma=4 beta=0.005", PerturbationMethod::kGeoDp, 4.0, 0.005},
      {"GeoDP sigma=4 beta=0.05", PerturbationMethod::kGeoDp, 4.0, 0.05},
      {"GeoDP sigma=4 beta=0.5", PerturbationMethod::kGeoDp, 4.0, 0.5},
  };

  TablePrinter table({"training", "attack AUC", "attack advantage",
                      "member loss", "non-member loss", "epsilon"});
  for (const AttackRow& row : rows) {
    Rng rng(33);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions trainer_options;
    trainer_options.method = row.method;
    trainer_options.batch_size = 40;
    trainer_options.iterations = 400;
    trainer_options.learning_rate = 3.0;
    trainer_options.clip_threshold = 1.0;
    trainer_options.noise_multiplier = row.sigma;
    trainer_options.beta = row.beta;
    trainer_options.seed = 35;
    DpTrainer trainer(model.get(), &members, nullptr, trainer_options);
    const TrainingResult training = trainer.Train();
    const MiaResult attack =
        RunLossThresholdAttack(*model, members, nonmembers);
    table.AddRow({row.label, TablePrinter::Fmt(attack.auc, 3),
                  TablePrinter::Fmt(attack.advantage, 3),
                  TablePrinter::Fmt(attack.mean_member_loss, 3),
                  TablePrinter::Fmt(attack.mean_nonmember_loss, 3),
                  TablePrinter::Fmt(training.epsilon, 2)});
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
