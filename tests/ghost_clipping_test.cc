// Ghost clipping: per-sample-gradient-free clip-and-accumulate. The core
// contract under test is equivalence with the materialized path — identical
// clipped and raw averaged gradients up to per-tier floating-point
// tolerance — across batch shapes, clippers, SIMD tiers, and thread
// counts, plus the structural-zero handling of non-finite samples.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/simd/dispatch.h"
#include "base/thread_pool.h"
#include "clip/clipping.h"
#include "clip/ghost_clipping.h"
#include "data/synthetic_images.h"
#include "models/cnn.h"
#include "models/logistic_regression.h"
#include "nn/conv2d.h"
#include "nn/group_norm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "nn/sequential.h"
#include "optim/dp_sgd.h"
#include "optim/ghost_grad.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

InMemoryDataset MakeTrainSet(int64_t n, uint64_t seed, int64_t size = 8) {
  SyntheticImageOptions options;
  options.num_examples = n;
  options.height = size;
  options.width = size;
  options.pixel_noise = 0.15;
  options.max_shift = 1;
  options.label_noise = 0.0;
  options.seed = seed;
  return MakeSyntheticImages(options);
}

void ExpectTensorsNear(const Tensor& a, const Tensor& b, double tolerance) {
  ASSERT_EQ(a.numel(), b.numel());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tolerance) << "element " << i;
  }
}

// ---------------------------------------------------------------- weights

TEST(GhostClipperTest, WeightsMatchClipperScale) {
  const FlatClipper clipper(1.0);
  const GhostClipper ghost(clipper);
  // Norms 0.5 (under the threshold) and 2.0 (clipped down by half).
  const GhostBatchWeights w =
      ghost.Weights({0.25, 4.0}, {0.7, 0.9});
  ASSERT_EQ(w.clipped.size(), 2u);
  EXPECT_DOUBLE_EQ(w.norms[0], 0.5);
  EXPECT_DOUBLE_EQ(w.norms[1], 2.0);
  EXPECT_DOUBLE_EQ(w.clipped[0], clipper.ClipScale(0.5));
  EXPECT_DOUBLE_EQ(w.clipped[1], clipper.ClipScale(2.0));
  EXPECT_DOUBLE_EQ(w.raw[0], 1.0);
  EXPECT_DOUBLE_EQ(w.raw[1], 1.0);
  EXPECT_EQ(w.included, 2);
  EXPECT_EQ(w.nonfinite_skipped, 0);
  EXPECT_DOUBLE_EQ(w.included_loss_sum, 1.6);
}

TEST(GhostClipperTest, NonFiniteSamplesGetExactZeroWeight) {
  const FlatClipper clipper(1.0);
  const GhostClipper ghost(clipper);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Sample 0: NaN loss. Sample 1: Inf norm. Sample 2: healthy.
  const GhostBatchWeights w =
      ghost.Weights({1.0, inf, 1.0}, {nan, 0.5, 0.5});
  EXPECT_EQ(w.clipped[0], 0.0);
  EXPECT_EQ(w.raw[0], 0.0);
  EXPECT_EQ(w.clipped[1], 0.0);
  EXPECT_EQ(w.raw[1], 0.0);
  EXPECT_GT(w.clipped[2], 0.0);
  EXPECT_EQ(w.included, 1);
  EXPECT_EQ(w.nonfinite_skipped, 2);
  EXPECT_DOUBLE_EQ(w.included_loss_sum, 0.5);
}

TEST(GhostClipperTest, ZeroNormSampleStaysIncluded) {
  const FlatClipper clipper(0.1);
  const GhostClipper ghost(clipper);
  const GhostBatchWeights w = ghost.Weights({0.0}, {1.0});
  // Flat clipping leaves an all-zero gradient untouched (scale 1).
  EXPECT_DOUBLE_EQ(w.clipped[0], 1.0);
  EXPECT_EQ(w.included, 1);
  EXPECT_EQ(w.nonfinite_skipped, 0);
}

// ----------------------------------------------------------- layer hooks

// Runs `layer` per sample with the materialized Backward and returns each
// sample's flattened parameter gradient. Leaves gradients zeroed.
std::vector<Tensor> MaterializedPerSampleGrads(Layer& layer, const Tensor& x,
                                               const Tensor& gy,
                                               std::vector<Tensor>* grad_in) {
  const std::vector<Parameter*> params = layer.Parameters();
  const int64_t batch = x.dim(0);
  const int64_t in_stride = x.numel() / batch;
  const int64_t out_stride = gy.numel() / batch;
  std::vector<int64_t> in_shape = x.shape(), out_shape = gy.shape();
  in_shape[0] = 1;
  out_shape[0] = 1;
  std::vector<Tensor> grads;
  for (int64_t b = 0; b < batch; ++b) {
    ZeroGradients(params);
    Tensor xb(in_shape);
    std::memcpy(xb.data(), x.data() + b * in_stride,
                static_cast<size_t>(in_stride) * sizeof(float));
    Tensor gyb(out_shape);
    std::memcpy(gyb.data(), gy.data() + b * out_stride,
                static_cast<size_t>(out_stride) * sizeof(float));
    layer.Forward(xb);
    Tensor gib = layer.Backward(gyb);
    if (grad_in != nullptr) grad_in->push_back(std::move(gib));
    grads.push_back(FlattenGradients(params));
  }
  ZeroGradients(params);
  return grads;
}

double SquaredNorm(const Tensor& t) {
  double sum = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return sum;
}

template <typename LayerT>
void CheckLayerGhostHooks(LayerT& layer, const Tensor& x, const Tensor& gy,
                          const std::vector<double>& accumulate_weights) {
  const int64_t batch = x.dim(0);
  std::vector<Tensor> grad_in_rows;
  const std::vector<Tensor> per_sample =
      MaterializedPerSampleGrads(layer, x, gy, &grad_in_rows);

  // Pass 1: ghost norms must match the materialized per-sample norms and
  // the input gradient must match the batched materialized backward.
  layer.Forward(x);
  std::vector<double> ghost_norm_sq(static_cast<size_t>(batch), 0.0);
  const Tensor grad_input = layer.GhostBackward(gy, ghost_norm_sq);
  const int64_t in_stride = x.numel() / batch;
  for (int64_t b = 0; b < batch; ++b) {
    const double want = SquaredNorm(per_sample[static_cast<size_t>(b)]);
    EXPECT_NEAR(ghost_norm_sq[static_cast<size_t>(b)], want,
                1e-7 * (1.0 + want))
        << "sample " << b;
    for (int64_t i = 0; i < in_stride; ++i) {
      EXPECT_NEAR(grad_input[b * in_stride + i],
                  grad_in_rows[static_cast<size_t>(b)][i], 1e-5)
          << "grad_input sample " << b << " element " << i;
    }
  }

  // Pass 2: weighted accumulation must equal the weighted sum of the
  // materialized per-sample gradients.
  layer.GhostAccumulate(accumulate_weights);
  const Tensor got = FlattenGradients(layer.Parameters());
  Tensor want(got.shape());
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < want.numel(); ++i) {
      want[i] += static_cast<float>(
          accumulate_weights[static_cast<size_t>(b)] *
          static_cast<double>(per_sample[static_cast<size_t>(b)][i]));
    }
  }
  ExpectTensorsNear(got, want, 1e-4);
  ZeroGradients(layer.Parameters());
}

TEST(LinearGhostTest, NormsGradInputAndAccumulationMatchMaterialized) {
  Rng rng(21);
  Linear layer(5, 3, rng);
  const Tensor x = Tensor::Randn({4, 5}, rng);
  const Tensor gy = Tensor::Randn({4, 3}, rng);
  CheckLayerGhostHooks(layer, x, gy, {0.5, 0.0, 2.0, 1.0});
}

TEST(LinearGhostTest, WithoutBiasMatchesMaterialized) {
  Rng rng(22);
  Linear layer(6, 4, rng, /*with_bias=*/false);
  const Tensor x = Tensor::Randn({3, 6}, rng);
  const Tensor gy = Tensor::Randn({3, 4}, rng);
  CheckLayerGhostHooks(layer, x, gy, {1.0, 0.3, 1.0});
}

TEST(Conv2dGhostTest, NormsGradInputAndAccumulationMatchMaterialized) {
  Rng rng(23);
  Conv2d layer(2, 3, /*kernel_size=*/3, rng, /*padding=*/1);
  const Tensor x = Tensor::Randn({3, 2, 5, 5}, rng);
  const Tensor gy = Tensor::Randn({3, 3, 5, 5}, rng);
  CheckLayerGhostHooks(layer, x, gy, {0.7, 0.0, 1.3});
}

TEST(Conv2dGhostTest, DirectImplMatchesMaterialized) {
  Rng rng(24);
  Conv2d layer(1, 2, /*kernel_size=*/3, rng, /*padding=*/0,
               /*with_bias=*/true, ConvImpl::kDirect);
  const Tensor x = Tensor::Randn({2, 1, 6, 6}, rng);
  const Tensor gy = Tensor::Randn({2, 2, 4, 4}, rng);
  CheckLayerGhostHooks(layer, x, gy, {1.0, 0.25});
}

TEST(LinearGhostTest, ZeroWeightExcludesNonFiniteSampleStructurally) {
  Rng rng(25);
  Linear layer(4, 3, rng);
  const Tensor x = Tensor::Randn({2, 4}, rng);
  Tensor gy = Tensor::Randn({2, 3}, rng);
  gy[0] = std::numeric_limits<float>::infinity();
  gy[1] = std::numeric_limits<float>::quiet_NaN();

  layer.Forward(x);
  std::vector<double> ghost_norm_sq(2, 0.0);
  layer.GhostBackward(gy, ghost_norm_sq);
  EXPECT_FALSE(std::isfinite(ghost_norm_sq[0]));
  EXPECT_TRUE(std::isfinite(ghost_norm_sq[1]));

  // Weight exactly 0.0 must skip the poisoned sample structurally — a
  // multiply would produce 0 * Inf = NaN and poison the sums.
  layer.GhostAccumulate({0.0, 1.0});
  const Tensor got = FlattenGradients(layer.Parameters());
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(got[i])) << "element " << i;
  }
  ZeroGradients(layer.Parameters());
}

TEST(Conv2dGhostTest, ZeroWeightExcludesNonFiniteSampleStructurally) {
  Rng rng(26);
  Conv2d layer(1, 2, /*kernel_size=*/3, rng, /*padding=*/1);
  const Tensor x = Tensor::Randn({2, 1, 4, 4}, rng);
  Tensor gy = Tensor::Randn({2, 2, 4, 4}, rng);
  gy[3] = std::numeric_limits<float>::infinity();

  layer.Forward(x);
  std::vector<double> ghost_norm_sq(2, 0.0);
  layer.GhostBackward(gy, ghost_norm_sq);
  EXPECT_FALSE(std::isfinite(ghost_norm_sq[0]));

  layer.GhostAccumulate({0.0, 1.0});
  const Tensor got = FlattenGradients(layer.Parameters());
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(got[i])) << "element " << i;
  }
  ZeroGradients(layer.Parameters());
}

// ------------------------------------------------------- full-model driver

TEST(GhostGradTest, SupportDetection) {
  Rng rng(31);
  CnnConfig config;
  auto cnn = MakeCnn(config, rng);
  EXPECT_TRUE(GhostClipSupported(*cnn));
  auto logreg = MakeLogisticRegression(64, 10, rng);
  EXPECT_TRUE(GhostClipSupported(*logreg));

  // GroupNorm has parameters but no ghost hooks, so any model containing
  // it must be reported unsupported.
  Sequential with_norm;
  with_norm.Emplace<GroupNorm>(4, 2);
  EXPECT_FALSE(GhostClipSupported(with_norm));
}

// Checks ghost-vs-materialized equivalence of the complete
// PrivateBatchGradient on one model/dataset/clipper combination.
void CheckEquivalence(Sequential& model, const InMemoryDataset& train,
                      const std::vector<int64_t>& indices,
                      const Clipper& clipper) {
  SoftmaxCrossEntropy loss;
  const PrivateBatchGradient materialized = ComputePerSampleGradients(
      model, loss, train, indices, clipper, /*record_sample_norms=*/true);
  const PrivateBatchGradient ghost = ComputeGhostClippedGradients(
      model, loss, train, indices, clipper, /*record_sample_norms=*/true);

  ASSERT_EQ(ghost.batch_size, materialized.batch_size);
  EXPECT_EQ(ghost.nonfinite_skipped, materialized.nonfinite_skipped);
  EXPECT_NEAR(ghost.mean_loss, materialized.mean_loss, 1e-9);
  ASSERT_EQ(ghost.sample_losses.size(), materialized.sample_losses.size());
  for (size_t b = 0; b < ghost.sample_losses.size(); ++b) {
    EXPECT_NEAR(ghost.sample_losses[b], materialized.sample_losses[b], 1e-9)
        << "sample " << b;
  }
  ASSERT_EQ(ghost.sample_grad_norms.size(),
            materialized.sample_grad_norms.size());
  for (size_t b = 0; b < ghost.sample_grad_norms.size(); ++b) {
    const double want = materialized.sample_grad_norms[b];
    EXPECT_NEAR(ghost.sample_grad_norms[b], want, 1e-6 * (1.0 + want))
        << "sample " << b;
  }
  ExpectTensorsNear(ghost.averaged_clipped, materialized.averaged_clipped,
                    2e-5);
  ExpectTensorsNear(ghost.averaged_raw, materialized.averaged_raw, 2e-5);
}

class GhostTierTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_tier_ = ActiveSimdTier(); }
  void TearDown() override { SetSimdTier(entry_tier_); }

  SimdTier entry_tier_ = SimdTier::kScalar;
};

TEST_F(GhostTierTest, CnnMatchesMaterializedAcrossBatchesAndTiers) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 80;
  data_options.seed = 5;
  const InMemoryDataset train = MakeSyntheticImages(data_options);
  Rng rng(41);
  CnnConfig config;
  auto model = MakeCnn(config, rng);
  const FlatClipper clipper(0.1);

  for (const SimdTier tier : AvailableSimdTiers()) {
    SetSimdTier(tier);
    SCOPED_TRACE(std::string("tier ") + SimdTierName(tier));
    for (const int64_t batch : {int64_t{1}, int64_t{7}, int64_t{64}}) {
      SCOPED_TRACE("batch " + std::to_string(batch));
      std::vector<int64_t> indices(static_cast<size_t>(batch));
      for (int64_t i = 0; i < batch; ++i) indices[static_cast<size_t>(i)] = i;
      CheckEquivalence(*model, train, indices, clipper);
    }
  }
}

TEST_F(GhostTierTest, LogisticRegressionMatchesWithAdaptiveClippers) {
  const InMemoryDataset train = MakeTrainSet(40, 6);
  Rng rng(42);
  auto model = MakeLogisticRegression(64, 10, rng);
  std::vector<int64_t> indices(16);
  for (int64_t i = 0; i < 16; ++i) indices[static_cast<size_t>(i)] = i + 3;

  for (const SimdTier tier : AvailableSimdTiers()) {
    SetSimdTier(tier);
    SCOPED_TRACE(std::string("tier ") + SimdTierName(tier));
    for (const char* name : {"flat", "AUTO-S", "PSAC"}) {
      SCOPED_TRACE(std::string("clipper ") + name);
      const auto clipper = MakeClipper(name, ClipThreshold(0.1));
      CheckEquivalence(*model, train, indices, *clipper);
    }
  }
}

TEST(GhostGradTest, BitIdenticalAcrossThreadCounts) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 48;
  data_options.seed = 7;
  const InMemoryDataset train = MakeSyntheticImages(data_options);
  Rng rng(43);
  CnnConfig config;
  auto model = MakeCnn(config, rng);
  const FlatClipper clipper(0.1);
  std::vector<int64_t> indices(32);
  for (int64_t i = 0; i < 32; ++i) indices[static_cast<size_t>(i)] = i;
  SoftmaxCrossEntropy loss;

  SetGlobalThreadCount(1);
  const PrivateBatchGradient one = ComputeGhostClippedGradients(
      *model, loss, train, indices, clipper);
  SetGlobalThreadCount(8);
  const PrivateBatchGradient eight = ComputeGhostClippedGradients(
      *model, loss, train, indices, clipper);
  SetGlobalThreadCount(1);

  ASSERT_EQ(one.averaged_clipped.numel(), eight.averaged_clipped.numel());
  EXPECT_EQ(std::memcmp(one.averaged_clipped.data(),
                        eight.averaged_clipped.data(),
                        static_cast<size_t>(one.averaged_clipped.numel()) *
                            sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(one.averaged_raw.data(), eight.averaged_raw.data(),
                        static_cast<size_t>(one.averaged_raw.numel()) *
                            sizeof(float)),
            0);
}

// ----------------------------------------------------------------- trainer

TEST(TrainerGhostTest, GhostModeTrainsAndConverges) {
  const InMemoryDataset train = MakeTrainSet(200, 1);
  Rng rng(2);
  auto model = MakeLogisticRegression(64, 10, rng);
  const double before = EvaluateMeanLoss(*model, train);

  TrainerOptions options;
  options.method = PerturbationMethod::kNoiseFree;
  options.clip_mode = "ghost";
  options.batch_size = 32;
  options.iterations = 120;
  options.learning_rate = 2.0;
  options.clip_threshold = 0.5;
  options.seed = 3;
  DpTrainer trainer(model.get(), &train, &train, options);
  const TrainingResult result = trainer.Train();

  EXPECT_LT(result.final_train_loss, before * 0.7);
  EXPECT_GT(result.test_accuracy, 0.5);
}

TEST(TrainerGhostTest, GhostMatchesMaterializeTrajectory) {
  const InMemoryDataset train = MakeTrainSet(120, 9);
  const auto run = [&](const std::string& clip_mode) {
    Rng rng(4);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kNoiseFree;
    options.clip_mode = clip_mode;
    options.batch_size = 16;
    options.iterations = 10;
    options.learning_rate = 0.5;
    options.record_loss_every = 1;
    options.seed = 5;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    return trainer.Train();
  };
  const TrainingResult materialize = run("materialize");
  const TrainingResult ghost = run("ghost");

  ASSERT_EQ(ghost.loss_history.size(), materialize.loss_history.size());
  for (size_t i = 0; i < ghost.loss_history.size(); ++i) {
    EXPECT_NEAR(ghost.loss_history[i], materialize.loss_history[i], 1e-3)
        << "step " << i;
  }
  EXPECT_NEAR(ghost.final_train_loss, materialize.final_train_loss, 1e-3);
}

TEST(TrainerGhostTest, EmptyPoissonLotsAreCountedNotRecorded) {
  // Same rigged sampling rate as the materialized empty-lot regression:
  // P(empty lot) ~ 0.34 per step, so empty lots are all but guaranteed.
  // The ghost path must route them through the zero-gradient branch
  // instead of asserting on an empty batch.
  const InMemoryDataset train = MakeTrainSet(8, 37);
  Rng rng(38);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.clip_mode = "ghost";
  options.poisson_sampling = true;
  options.batch_size = 1;
  options.iterations = 60;
  options.learning_rate = 0.1;
  options.noise_multiplier = 1.0;
  options.record_loss_every = 1;
  options.seed = 39;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_GT(run.value().empty_lots, 0);
  for (const double loss : run.value().loss_history) EXPECT_GT(loss, 0.0);
}

TEST(TrainerGhostTest, NonFiniteSamplesAreSkippedNotPropagated) {
  InMemoryDataset train;
  Rng rng(11);
  for (int i = 0; i < 24; ++i) {
    Tensor image = Tensor::Randn({1, 8, 8}, rng);
    if (i == 3) image[5] = std::numeric_limits<float>::infinity();
    if (i == 7) image[9] = std::numeric_limits<float>::quiet_NaN();
    train.Add(std::move(image), i % 10);
  }
  Rng model_rng(2);
  auto model = MakeLogisticRegression(64, 10, model_rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.clip_mode = "ghost";
  options.batch_size = 24;
  options.iterations = 8;
  options.learning_rate = 0.5;
  options.noise_multiplier = 0.5;
  options.seed = 13;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Both poisoned samples are skipped on every one of the 8 steps and the
  // model stays finite.
  EXPECT_EQ(run.value().nonfinite_skipped, 16);
  const Tensor flat = FlattenValues(model->Parameters());
  for (int64_t i = 0; i < flat.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(flat[i])) << "weight " << i;
  }
}

TEST(TrainerGhostTest, UnsupportedModelRejected) {
  const InMemoryDataset train = MakeTrainSet(32, 1);
  Rng rng(3);
  auto model = std::make_unique<Sequential>();
  model->Emplace<GroupNorm>(1, 1);
  model->Emplace<Linear>(64, 10, rng);
  TrainerOptions options;
  options.clip_mode = "ghost";
  options.batch_size = 16;
  options.iterations = 5;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().ToString().find("ghost"), std::string::npos);
}

TEST(TrainerGhostTest, InvalidClipModeAndClipperNamesRejected) {
  const InMemoryDataset train = MakeTrainSet(32, 1);
  Rng rng(3);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options;
  options.batch_size = 16;
  options.iterations = 5;

  options.clip_mode = "gost";
  {
    DpTrainer trainer(model.get(), &train, nullptr, options);
    StatusOr<TrainingResult> run = trainer.Run();
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(run.status().ToString().find("clip_mode"), std::string::npos);
  }

  options.clip_mode = "materialize";
  options.clipper = "median";  // not a shipped strategy
  {
    DpTrainer trainer(model.get(), &train, nullptr, options);
    StatusOr<TrainingResult> run = trainer.Run();
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(run.status().ToString().find("clipper"), std::string::npos);
  }
}

}  // namespace
}  // namespace geodp
