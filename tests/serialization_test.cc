// Tests for tensor serialization and model checkpoints.

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "models/cnn.h"
#include "models/mlp.h"
#include "nn/checkpoint.h"
#include "nn/parameter.h"
#include "tensor/serialization.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TensorSerializationTest, StreamRoundTrip) {
  Rng rng(1);
  const Tensor original = Tensor::Randn({3, 4, 5}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  StatusOr<Tensor> restored = ReadTensor(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().shape(), original.shape());
  EXPECT_TRUE(AllClose(restored.value(), original, 0.0, 0.0));
}

TEST(TensorSerializationTest, MultipleTensorsInOneStream) {
  Rng rng(2);
  const Tensor a = Tensor::Randn({4}, rng);
  const Tensor b = Tensor::Randn({2, 2}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(a, buffer).ok());
  ASSERT_TRUE(WriteTensor(b, buffer).ok());
  StatusOr<Tensor> ra = ReadTensor(buffer);
  StatusOr<Tensor> rb = ReadTensor(buffer);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(AllClose(ra.value(), a, 0.0, 0.0));
  EXPECT_TRUE(AllClose(rb.value(), b, 0.0, 0.0));
}

TEST(TensorSerializationTest, RejectsGarbage) {
  std::stringstream buffer;
  buffer << "this is not a tensor";
  StatusOr<Tensor> restored = ReadTensor(buffer);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(TensorSerializationTest, RejectsTruncatedData) {
  Rng rng(3);
  const Tensor original = Tensor::Randn({64}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(ReadTensor(truncated).ok());
}

TEST(TensorSerializationTest, BitFlipAnywhereIsDetected) {
  // The v2 integrity trailer (payload length + CRC-32) must catch a single
  // bit flip at any offset, including inside the float payload where no
  // structural check would notice.
  Rng rng(41);
  const Tensor original = Tensor::Randn({5, 5}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  const std::string bytes = buffer.str();
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string bad = bytes;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x04);
    std::stringstream corrupted(bad);
    EXPECT_FALSE(ReadTensor(corrupted).ok())
        << "bit flip at offset " << offset << " went undetected";
  }
}

TEST(TensorSerializationTest, TruncatedTrailerIsDetected) {
  Rng rng(42);
  const Tensor original = Tensor::Randn({8}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  const std::string bytes = buffer.str();
  // Cut anywhere inside the 12-byte trailer: the data is all present, so
  // only the trailer checks can notice.
  for (size_t cut = bytes.size() - 12; cut < bytes.size(); ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(ReadTensor(truncated).ok())
        << "trailer truncation at " << cut << " went undetected";
  }
}

TEST(TensorSerializationTest, ReadsLegacyV1WithoutTrailer) {
  // A v1 file is the v2 byte stream minus the trailer, with version 1 in
  // the header. Old files must stay readable.
  Rng rng(43);
  const Tensor original = Tensor::Randn({3, 2}, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 12);  // strip u64 length + u32 crc
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));
  std::stringstream legacy(bytes);
  StatusOr<Tensor> restored = ReadTensor(legacy);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(AllClose(restored.value(), original, 0.0, 0.0));
}

TEST(TensorSerializationTest, EmptyTensorRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(Tensor(), buffer).ok());
  StatusOr<Tensor> restored = ReadTensor(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().numel(), 0);
}

TEST(TensorSerializationTest, FileRoundTrip) {
  Rng rng(4);
  const Tensor original = Tensor::Randn({7, 3}, rng);
  const std::string path = TempPath("tensor.gdpt");
  ASSERT_TRUE(SaveTensorToFile(original, path).ok());
  StatusOr<Tensor> restored = LoadTensorFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(AllClose(restored.value(), original, 0.0, 0.0));
  std::remove(path.c_str());
}

TEST(TensorSerializationTest, MissingFileFails) {
  StatusOr<Tensor> restored = LoadTensorFromFile("/nonexistent/path.gdpt");
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, CnnRoundTrip) {
  Rng rng(5);
  CnnConfig config;
  config.image_size = 8;
  auto model = MakeCnn(config, rng);
  const std::string path = TempPath("cnn.gdpc");
  ASSERT_TRUE(SaveCheckpoint(*model, path).ok());

  Rng rng2(999);  // different init
  auto restored = MakeCnn(config, rng2);
  EXPECT_FALSE(AllClose(FlattenValues(restored->Parameters()),
                        FlattenValues(model->Parameters())));
  ASSERT_TRUE(LoadCheckpoint(*restored, path).ok());
  EXPECT_TRUE(AllClose(FlattenValues(restored->Parameters()),
                       FlattenValues(model->Parameters()), 0.0, 0.0));
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoredModelComputesSameOutput) {
  Rng rng(6);
  MlpConfig config;
  config.input_dim = 16;
  config.hidden_dims = {8};
  config.num_classes = 4;
  auto model = MakeMlp(config, rng);
  const std::string path = TempPath("mlp.gdpc");
  ASSERT_TRUE(SaveCheckpoint(*model, path).ok());

  Rng rng2(7);
  auto restored = MakeMlp(config, rng2);
  ASSERT_TRUE(LoadCheckpoint(*restored, path).ok());
  const Tensor x = Tensor::Randn({3, 1, 4, 4}, rng);
  EXPECT_TRUE(AllClose(restored->Forward(x), model->Forward(x)));
  std::remove(path.c_str());
}

TEST(CheckpointTest, StructureMismatchFails) {
  Rng rng(8);
  MlpConfig small, large;
  small.input_dim = 16;
  small.hidden_dims = {8};
  large.input_dim = 16;
  large.hidden_dims = {8, 8};
  auto model = MakeMlp(small, rng);
  const std::string path = TempPath("mismatch.gdpc");
  ASSERT_TRUE(SaveCheckpoint(*model, path).ok());
  auto other = MakeMlp(large, rng);
  const Status status = LoadCheckpoint(*other, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchFails) {
  Rng rng(9);
  MlpConfig a, b;
  a.input_dim = 16;
  a.hidden_dims = {8};
  b.input_dim = 16;
  b.hidden_dims = {12};  // same structure, different width
  auto model = MakeMlp(a, rng);
  const std::string path = TempPath("shape.gdpc");
  ASSERT_TRUE(SaveCheckpoint(*model, path).ok());
  auto other = MakeMlp(b, rng);
  EXPECT_FALSE(LoadCheckpoint(*other, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geodp
