// Tests for the NN layer framework: forward correctness on known values and
// finite-difference gradient checks for every layer.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace geodp {
namespace {

using testing_util::CheckGradients;

TEST(ParameterTest, FlattenRoundTrip) {
  Rng rng(1);
  Parameter a("a", Tensor::Randn({2, 3}, rng));
  Parameter b("b", Tensor::Randn({4}, rng));
  std::vector<Parameter*> params = {&a, &b};
  EXPECT_EQ(TotalParameterCount(params), 10);
  const Tensor flat = FlattenValues(params);
  Parameter a2("a", Tensor::Zeros({2, 3}));
  Parameter b2("b", Tensor::Zeros({4}));
  std::vector<Parameter*> params2 = {&a2, &b2};
  SetValuesFromFlat(params2, flat);
  EXPECT_TRUE(AllClose(a2.value, a.value));
  EXPECT_TRUE(AllClose(b2.value, b.value));
}

TEST(ParameterTest, ApplyFlatUpdate) {
  Parameter a("a", Tensor::Vector({1, 2}));
  std::vector<Parameter*> params = {&a};
  ApplyFlatUpdate(params, Tensor::Vector({10, 20}), 0.1);
  EXPECT_NEAR(a.value[0], 0.0f, 1e-6);
  EXPECT_NEAR(a.value[1], 0.0f, 1e-6);
}

TEST(ParameterTest, ZeroGradients) {
  Parameter a("a", Tensor::Vector({1}));
  a.grad[0] = 5.0f;
  std::vector<Parameter*> params = {&a};
  ZeroGradients(params);
  EXPECT_EQ(a.grad[0], 0.0f);
}

TEST(InitTest, KaimingBound) {
  Rng rng(2);
  const Tensor w = KaimingUniform({100, 50}, 50, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LT(w[i], bound);
  }
}

TEST(InitTest, XavierBound) {
  Rng rng(3);
  const Tensor w = XavierUniform({20, 30}, 30, 20, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LT(w[i], bound);
  }
}

TEST(LinearTest, ForwardKnownValues) {
  Rng rng(4);
  Linear layer(2, 2, rng);
  layer.weight().value = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  layer.bias().value = Tensor::Vector({0.5f, -0.5f});
  const Tensor x = Tensor::FromVector({1, 2}, {1, 1});
  const Tensor y = layer.Forward(x);
  EXPECT_NEAR(y[0], 3.5f, 1e-6);  // 1*1 + 2*1 + 0.5
  EXPECT_NEAR(y[1], 6.5f, 1e-6);  // 3*1 + 4*1 - 0.5
}

TEST(LinearTest, GradientCheck) {
  Rng rng(5);
  Linear layer(5, 3, rng);
  const Tensor x = Tensor::Randn({4, 5}, rng);
  const auto result = CheckGradients(layer, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
  EXPECT_LT(result.max_param_error, 1e-2);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(6);
  Linear layer(3, 2, rng, /*with_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  const Tensor x = Tensor::Randn({2, 3}, rng);
  const auto result = CheckGradients(layer, x, rng);
  EXPECT_LT(result.max_param_error, 1e-2);
}

TEST(Conv2dTest, ForwardIdentityKernel) {
  Rng rng(7);
  Conv2d layer(1, 1, 1, rng, /*padding=*/0);
  layer.Parameters()[0]->value.Fill(1.0f);  // 1x1 kernel of 1
  layer.Parameters()[1]->value.Fill(0.0f);
  const Tensor x = Tensor::Randn({1, 1, 4, 4}, rng);
  const Tensor y = layer.Forward(x);
  EXPECT_TRUE(AllClose(y, x));
}

TEST(Conv2dTest, ForwardKnownSum) {
  Rng rng(8);
  Conv2d layer(1, 1, 3, rng, /*padding=*/0);
  layer.Parameters()[0]->value.Fill(1.0f);  // 3x3 box filter
  layer.Parameters()[1]->value.Fill(0.0f);
  Tensor x = Tensor::Full({1, 1, 3, 3}, 2.0f);
  const Tensor y = layer.Forward(x);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_NEAR(y[0], 18.0f, 1e-5);
}

TEST(Conv2dTest, PaddingKeepsSize) {
  Rng rng(9);
  Conv2d layer(2, 3, 3, rng, /*padding=*/1);
  const Tensor x = Tensor::Randn({2, 2, 6, 6}, rng);
  const Tensor y = layer.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(y.dim(2), 6);
  EXPECT_EQ(y.dim(3), 6);
}

TEST(Conv2dTest, GradientCheckNoPadding) {
  Rng rng(10);
  Conv2d layer(2, 2, 3, rng, /*padding=*/0);
  const Tensor x = Tensor::Randn({2, 2, 5, 5}, rng);
  const auto result = CheckGradients(layer, x, rng);
  EXPECT_LT(result.max_input_error, 2e-2);
  EXPECT_LT(result.max_param_error, 2e-2);
}

TEST(Conv2dTest, GradientCheckWithPadding) {
  Rng rng(11);
  Conv2d layer(1, 2, 3, rng, /*padding=*/1);
  const Tensor x = Tensor::Randn({1, 1, 4, 4}, rng);
  const auto result = CheckGradients(layer, x, rng);
  EXPECT_LT(result.max_input_error, 2e-2);
  EXPECT_LT(result.max_param_error, 2e-2);
}

TEST(MaxPoolTest, ForwardSelectsMax) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.Forward(x);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 5, 3, 2});
  pool.Forward(x);
  const Tensor gy = Tensor::FromVector({1, 1, 1, 1}, {7});
  const Tensor gx = pool.Backward(gy);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 7.0f);
  EXPECT_EQ(gx[2], 0.0f);
}

TEST(MaxPoolTest, GradientCheck) {
  Rng rng(12);
  MaxPool2d pool(2);
  const Tensor x = Tensor::Randn({2, 2, 4, 4}, rng);
  const auto result = CheckGradients(pool, x, rng, /*epsilon=*/1e-4);
  EXPECT_LT(result.max_input_error, 5e-2);
}

TEST(AvgPool2dTest, ForwardAveragesWindows) {
  AvgPool2d pool(2);
  const Tensor x = Tensor::FromVector({1, 1, 2, 4}, {1, 3, 5, 7, 2, 4, 6, 8});
  const Tensor y = pool.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 1, 1, 2}));
  EXPECT_NEAR(y[0], 2.5f, 1e-6);  // mean of {1, 3, 2, 4}
  EXPECT_NEAR(y[1], 6.5f, 1e-6);  // mean of {5, 7, 6, 8}
}

TEST(AvgPool2dTest, BackwardSpreadsUniformly) {
  AvgPool2d pool(2);
  Rng rng(99);
  const Tensor x = Tensor::Randn({1, 1, 2, 2}, rng);  // any values
  pool.Forward(x);
  const Tensor gy = Tensor::FromVector({1, 1, 1, 1}, {8});
  const Tensor gx = pool.Backward(gy);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(gx[i], 2.0f, 1e-6);
}

TEST(AvgPool2dTest, GradientCheck) {
  Rng rng(100);
  AvgPool2d pool(2);
  const Tensor x = Tensor::Randn({2, 3, 4, 4}, rng);
  const auto result = CheckGradients(pool, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(AvgPool2dTest, WindowOneIsIdentity) {
  Rng rng(101);
  AvgPool2d pool(1);
  const Tensor x = Tensor::Randn({1, 2, 3, 3}, rng);
  EXPECT_TRUE(AllClose(pool.Forward(x), x));
}

TEST(GlobalAvgPoolTest, ForwardAveragesPlane) {
  GlobalAvgPool pool;
  const Tensor x = Tensor::FromVector({1, 2, 2, 2}, {1, 2, 3, 4, 8, 8, 8, 8});
  const Tensor y = pool.Forward(x);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_NEAR(y[0], 2.5f, 1e-6);
  EXPECT_NEAR(y[1], 8.0f, 1e-6);
}

TEST(GlobalAvgPoolTest, GradientCheck) {
  Rng rng(13);
  GlobalAvgPool pool;
  const Tensor x = Tensor::Randn({2, 3, 4, 4}, rng);
  const auto result = CheckGradients(pool, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(ReLUTest, ForwardZeroesNegatives) {
  ReLU relu;
  const Tensor x = Tensor::Vector({-1, 0, 2});
  const Tensor y = relu.Forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(ReLUTest, GradientCheck) {
  Rng rng(14);
  ReLU relu;
  // Keep inputs away from the kink for a clean finite-difference check.
  Tensor x = Tensor::Randn({3, 7}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.5f;
  }
  const auto result = CheckGradients(relu, x, rng, /*epsilon=*/1e-3);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(TanhTest, GradientCheck) {
  Rng rng(15);
  Tanh tanh_layer;
  const Tensor x = Tensor::Randn({3, 5}, rng);
  const auto result = CheckGradients(tanh_layer, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(FlattenTest, RoundTripShapes) {
  Flatten flatten;
  Rng rng(16);
  const Tensor x = Tensor::Randn({2, 3, 4, 5}, rng);
  const Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 60);
  const Tensor gx = flatten.Backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({2, 4});
  const double value = loss.Forward(logits, {0, 3});
  EXPECT_NEAR(value, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ProbabilitiesSumToOne) {
  SoftmaxCrossEntropy loss;
  Rng rng(17);
  const Tensor logits = Tensor::Randn({3, 5}, rng, 3.0f);
  loss.Forward(logits, {0, 1, 2});
  const Tensor& probs = loss.probabilities();
  for (int64_t b = 0; b < 3; ++b) {
    double row = 0.0;
    for (int64_t k = 0; k < 5; ++k)
      row += static_cast<double>(probs[b * 5 + k]);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Rng rng(18);
  const Tensor logits = Tensor::Randn({4, 6}, rng);
  loss.Forward(logits, {0, 1, 2, 3});
  const Tensor grad = loss.Backward();
  for (int64_t b = 0; b < 4; ++b) {
    double row = 0.0;
    for (int64_t k = 0; k < 6; ++k)
      row += static_cast<double>(grad[b * 6 + k]);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropyTest, NumericalGradient) {
  SoftmaxCrossEntropy loss;
  Rng rng(19);
  Tensor logits = Tensor::Randn({2, 3}, rng);
  const std::vector<int64_t> labels = {1, 2};
  loss.Forward(logits, labels);
  const Tensor analytic = loss.Backward();
  const double eps = 1e-3;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double up = loss.Forward(logits, labels);
    logits[i] = saved - static_cast<float>(eps);
    const double down = loss.Forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR((up - down) / (2 * eps), analytic[i], 1e-3);
  }
}

TEST(SoftmaxCrossEntropyTest, ExtremLogitsAreStable) {
  SoftmaxCrossEntropy loss;
  const Tensor logits = Tensor::FromVector({1, 3}, {1000.0f, -1000.0f, 0.0f});
  const double value = loss.Forward(logits, {0});
  EXPECT_NEAR(value, 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(loss.Forward(logits, {1})));
}

TEST(MeanSquaredErrorTest, KnownValueAndGradient) {
  MeanSquaredError mse;
  const Tensor pred = Tensor::Vector({1, 2});
  const Tensor target = Tensor::Vector({0, 0});
  EXPECT_NEAR(mse.Forward(pred, target), 2.5, 1e-6);
  const Tensor grad = mse.Backward();
  EXPECT_NEAR(grad[0], 1.0f, 1e-6);  // 2*(1-0)/2
  EXPECT_NEAR(grad[1], 2.0f, 1e-6);
}

TEST(SequentialTest, ChainsLayers) {
  Rng rng(20);
  Sequential net("test");
  net.Emplace<Linear>(4, 3, rng);
  net.Emplace<ReLU>();
  net.Emplace<Linear>(3, 2, rng);
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.Parameters().size(), 4u);
  const Tensor x = Tensor::Randn({5, 4}, rng);
  const Tensor y = net.Forward(x);
  EXPECT_EQ(y.dim(1), 2);
}

TEST(SequentialTest, GradientCheck) {
  Rng rng(21);
  Sequential net;
  net.Emplace<Linear>(4, 6, rng);
  net.Emplace<Tanh>();
  net.Emplace<Linear>(6, 2, rng);
  const Tensor x = Tensor::Randn({3, 4}, rng);
  const auto result = CheckGradients(net, x, rng);
  EXPECT_LT(result.max_input_error, 2e-2);
  EXPECT_LT(result.max_param_error, 2e-2);
}

TEST(ResidualBlockTest, PreservesShape) {
  Rng rng(22);
  ResidualBlock block(4, rng);
  const Tensor x = Tensor::Randn({2, 4, 6, 6}, rng);
  const Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualBlockTest, HasTwoConvsOfParameters) {
  Rng rng(23);
  ResidualBlock block(4, rng);
  EXPECT_EQ(block.Parameters().size(), 4u);  // two convs x (weight, bias)
}

TEST(ResidualBlockTest, GradientCheck) {
  Rng rng(24);
  ResidualBlock block(2, rng);
  const Tensor x = Tensor::Randn({1, 2, 4, 4}, rng);
  const auto result = CheckGradients(block, x, rng, /*epsilon=*/1e-3);
  EXPECT_LT(result.max_input_error, 5e-2);
  EXPECT_LT(result.max_param_error, 5e-2);
}

TEST(ResidualBlockTest, IdentityPathDominatesWithZeroWeights) {
  Rng rng(25);
  ResidualBlock block(2, rng);
  for (Parameter* p : block.Parameters()) p->value.Fill(0.0f);
  Tensor x = Tensor::Full({1, 2, 4, 4}, 1.5f);
  const Tensor y = block.Forward(x);
  // F(x) = 0, so out = ReLU(x) = x for positive x.
  EXPECT_TRUE(AllClose(y, x));
}

}  // namespace
}  // namespace geodp
