#include "obs/phase_profiler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "base/io/file_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geodp {
namespace {

// Duration histogram: bucket i counts spans no longer than 2^i
// microseconds. 31 finite bounds cover 1 us through ~18 minutes; longer
// spans land in the overflow bucket.
constexpr int kDurationBucketCount = 31;

int BucketIndex(int64_t micros) {
  int index = 0;
  while (index < kDurationBucketCount && (int64_t{1} << index) < micros) {
    ++index;
  }
  return index;  // == kDurationBucketCount for the overflow bucket
}

// One span name under one enclosing span, on one thread. Node indices are
// stable for the life of the process (the tree only grows), so the
// owner's span stack can hold indices across snapshots and resets.
struct ProfileNode {
  const char* name = nullptr;  // string literal (TraceSpan contract)
  int64_t count = 0;
  int64_t total_micros = 0;
  std::array<int64_t, kDurationBucketCount + 1> buckets{};
  std::vector<int> children;
};

struct ThreadProfile {
  std::mutex mu;
  std::vector<ProfileNode> nodes;  // guarded by mu
  std::vector<int> roots;          // guarded by mu
  std::vector<int> stack;          // owner thread only
};

std::atomic<bool> g_profiling{false};

std::mutex g_registry_mu;
// Leaked deliberately: a worker thread may exit after the registry is
// snapshotted, and per-thread trees are tiny (one node per span name).
std::vector<ThreadProfile*>& Registry() {
  static std::vector<ThreadProfile*>* threads =
      new std::vector<ThreadProfile*>();
  return *threads;
}
std::string g_folded_path;  // guarded by g_registry_mu

ThreadProfile& CurrentThreadProfile() {
  thread_local ThreadProfile* profile = [] {
    auto* fresh = new ThreadProfile();
    std::lock_guard<std::mutex> lock(g_registry_mu);
    Registry().push_back(fresh);
    return fresh;
  }();
  return *profile;
}

// Requires profile.mu held.
int FindOrAddChild(ThreadProfile& profile, int parent, const char* name) {
  std::vector<int>& siblings =
      parent < 0 ? profile.roots
                 : profile.nodes[static_cast<size_t>(parent)].children;
  for (const int child : siblings) {
    if (std::strcmp(profile.nodes[static_cast<size_t>(child)].name, name) ==
        0) {
      return child;
    }
  }
  const int index = static_cast<int>(profile.nodes.size());
  ProfileNode node;
  node.name = name;
  profile.nodes.push_back(std::move(node));
  // push_back may reallocate `nodes`, so re-fetch the child list rather
  // than appending through the (now possibly dangling) `siblings` ref.
  (parent < 0 ? profile.roots
              : profile.nodes[static_cast<size_t>(parent)].children)
      .push_back(index);
  return index;
}

// Requires profile.mu held.
void RecordInto(ProfileNode& node, int64_t micros) {
  ++node.count;
  node.total_micros += micros;
  ++node.buckets[static_cast<size_t>(BucketIndex(micros))];
}

// Merge accumulator for one phase path across threads.
struct MergedPhase {
  const char* name = nullptr;
  int64_t count = 0;
  int64_t total_micros = 0;
  int64_t self_micros = 0;
  std::array<int64_t, kDurationBucketCount + 1> buckets{};
};

// Requires profile.mu held. Walks `node` (and its subtree) appending to
// the cross-thread merge map keyed by ';'-joined path.
void MergeSubtree(const ThreadProfile& profile, int node_index,
                  const std::string& parent_path,
                  std::map<std::string, MergedPhase>& merged) {
  const ProfileNode& node = profile.nodes[static_cast<size_t>(node_index)];
  if (node.count == 0 && node.children.empty()) return;
  const std::string path =
      parent_path.empty() ? std::string(node.name)
                          : parent_path + ";" + node.name;
  int64_t children_micros = 0;
  for (const int child : node.children) {
    children_micros +=
        profile.nodes[static_cast<size_t>(child)].total_micros;
    MergeSubtree(profile, child, path, merged);
  }
  MergedPhase& out = merged[path];
  out.name = node.name;
  out.count += node.count;
  out.total_micros += node.total_micros;
  out.self_micros += std::max<int64_t>(node.total_micros - children_micros, 0);
  for (size_t b = 0; b < node.buckets.size(); ++b) {
    out.buckets[b] += node.buckets[b];
  }
}

void AtExitFlush() { (void)FlushProfile(); }

}  // namespace

void EnableProfiling(const std::string& folded_out_path) {
  static bool atexit_registered = [] {
    std::atexit(AtExitFlush);
    return true;
  }();
  (void)atexit_registered;
  ResetProfile();
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    g_folded_path = folded_out_path;
  }
  g_profiling.store(true, std::memory_order_relaxed);
  internal::UpdatePoolPartHook();
}

void DisableProfiling() {
  if (!g_profiling.load(std::memory_order_relaxed)) return;
  (void)FlushProfile();
  g_profiling.store(false, std::memory_order_relaxed);
  internal::UpdatePoolPartHook();
}

bool ProfilingEnabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void ResetProfile() {
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  for (ThreadProfile* profile : Registry()) {
    std::lock_guard<std::mutex> lock(profile->mu);
    for (ProfileNode& node : profile->nodes) {
      node.count = 0;
      node.total_micros = 0;
      node.buckets.fill(0);
    }
  }
}

ProfileSnapshot SnapshotProfile() {
  std::vector<ThreadProfile*> threads;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    threads = Registry();
  }
  std::map<std::string, MergedPhase> merged;
  int active_threads = 0;
  for (ThreadProfile* profile : threads) {
    std::lock_guard<std::mutex> lock(profile->mu);
    bool any = false;
    for (const ProfileNode& node : profile->nodes) {
      if (node.count > 0) {
        any = true;
        break;
      }
    }
    if (any) ++active_threads;
    for (const int root : profile->roots) {
      MergeSubtree(*profile, root, std::string(), merged);
    }
  }

  ProfileSnapshot snapshot;
  snapshot.threads = active_threads;
  snapshot.phases.reserve(merged.size());
  for (const auto& [path, phase] : merged) {
    if (phase.count == 0) continue;
    PhaseStats stats;
    stats.path = path;
    stats.name = phase.name;
    stats.count = phase.count;
    stats.total_micros = phase.total_micros;
    stats.self_micros = phase.self_micros;
    HistogramSnapshot histogram;
    histogram.upper_bounds.reserve(kDurationBucketCount);
    for (int b = 0; b < kDurationBucketCount; ++b) {
      histogram.upper_bounds.push_back(
          static_cast<double>(int64_t{1} << b));
    }
    histogram.counts.assign(phase.buckets.begin(), phase.buckets.end());
    histogram.count = phase.count;
    histogram.sum = static_cast<double>(phase.total_micros);
    stats.p50_micros = HistogramQuantile(histogram, 0.5);
    stats.p95_micros = HistogramQuantile(histogram, 0.95);
    stats.p99_micros = HistogramQuantile(histogram, 0.99);
    snapshot.phases.push_back(std::move(stats));
  }
  return snapshot;
}

std::string FoldedStacks(const ProfileSnapshot& snapshot) {
  std::ostringstream out;
  for (const PhaseStats& phase : snapshot.phases) {
    if (phase.self_micros <= 0) continue;
    out << phase.path << " " << phase.self_micros << "\n";
  }
  return out.str();
}

Status FlushProfile() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    path = g_folded_path;
  }
  if (path.empty()) return Status::Ok();
  return AtomicWriteFile(path, FoldedStacks(SnapshotProfile()), RetryPolicy{},
                         "obs.profile");
}

namespace internal {

void ProfilerEnterSpan(const char* name) {
  ThreadProfile& profile = CurrentThreadProfile();
  std::lock_guard<std::mutex> lock(profile.mu);
  const int parent = profile.stack.empty() ? -1 : profile.stack.back();
  profile.stack.push_back(FindOrAddChild(profile, parent, name));
}

void ProfilerExitSpan(const char* name, int64_t duration_micros) {
  ThreadProfile& profile = CurrentThreadProfile();
  std::lock_guard<std::mutex> lock(profile.mu);
  if (profile.stack.empty()) return;
  const int top = profile.stack.back();
  // RAII pairing makes a mismatch impossible in practice; tolerate one
  // anyway rather than corrupting another node's counters.
  if (std::strcmp(profile.nodes[static_cast<size_t>(top)].name, name) != 0) {
    return;
  }
  profile.stack.pop_back();
  if (!g_profiling.load(std::memory_order_relaxed)) return;
  RecordInto(profile.nodes[static_cast<size_t>(top)], duration_micros);
}

void ProfilerRecordLeaf(const char* name, int64_t duration_micros) {
  if (!g_profiling.load(std::memory_order_relaxed)) return;
  ThreadProfile& profile = CurrentThreadProfile();
  std::lock_guard<std::mutex> lock(profile.mu);
  const int parent = profile.stack.empty() ? -1 : profile.stack.back();
  RecordInto(
      profile.nodes[static_cast<size_t>(
          FindOrAddChild(profile, parent, name))],
      duration_micros);
}

}  // namespace internal

}  // namespace geodp
