// Tests for the phase profiler: hierarchical paths and self-time, the
// power-of-two percentile pipeline, leaf records (thread-pool parts),
// the folded-stack and /profilez golden structure, on/off gating, and
// the observability-neutrality contract — training telemetry bytes are
// identical with the profiler and flight recorder on or off, at 1 and 8
// threads.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/phase_profiler.h"
#include "obs/step_observer.h"
#include "obs/trace.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

// Every test drives the process-global profiler; reset around each to
// keep them order-independent.
class PhaseProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { EnableProfiling(std::string()); }
  void TearDown() override {
    DisableProfiling();
    ResetProfile();
  }
};

const PhaseStats* FindPhase(const ProfileSnapshot& snapshot,
                            const std::string& path) {
  for (const PhaseStats& phase : snapshot.phases) {
    if (phase.path == path) return &phase;
  }
  return nullptr;
}

TEST_F(PhaseProfilerTest, NestedSpansSplitTotalIntoSelfAndChildren) {
  internal::ProfilerEnterSpan("step");
  internal::ProfilerEnterSpan("step.sur_eval");
  internal::ProfilerExitSpan("step.sur_eval", 300);
  internal::ProfilerExitSpan("step", 1000);

  const ProfileSnapshot snapshot = SnapshotProfile();
  EXPECT_EQ(snapshot.threads, 1);
  ASSERT_EQ(snapshot.phases.size(), 2u);

  const PhaseStats* step = FindPhase(snapshot, "step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->name, "step");
  EXPECT_EQ(step->count, 1);
  EXPECT_EQ(step->total_micros, 1000);
  EXPECT_EQ(step->self_micros, 700);
  EXPECT_GT(step->p50_micros, 0.0);

  const PhaseStats* child = FindPhase(snapshot, "step;step.sur_eval");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->name, "step.sur_eval");
  EXPECT_EQ(child->total_micros, 300);
  EXPECT_EQ(child->self_micros, 300);
  // One 300 us observation lands in the (256, 512] power-of-two bucket.
  EXPECT_GT(child->p50_micros, 256.0);
  EXPECT_LE(child->p50_micros, 512.0);
}

TEST_F(PhaseProfilerTest, LeafRecordsAttachUnderTheCurrentSpan) {
  internal::ProfilerEnterSpan("step");
  internal::ProfilerRecordLeaf("pool.part", 40);
  internal::ProfilerRecordLeaf("pool.part", 60);
  internal::ProfilerExitSpan("step", 500);

  const ProfileSnapshot snapshot = SnapshotProfile();
  const PhaseStats* leaf = FindPhase(snapshot, "step;pool.part");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 2);
  EXPECT_EQ(leaf->total_micros, 100);
  const PhaseStats* step = FindPhase(snapshot, "step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->self_micros, 400);
}

TEST_F(PhaseProfilerTest, FoldedStacksGoldenBytes) {
  internal::ProfilerEnterSpan("step");
  internal::ProfilerEnterSpan("step.optimizer_apply");
  internal::ProfilerExitSpan("step.optimizer_apply", 250);
  internal::ProfilerExitSpan("step", 1000);

  EXPECT_EQ(FoldedStacks(SnapshotProfile()),
            "step 750\n"
            "step;step.optimizer_apply 250\n");
  // Zero-self phases are omitted: a wrapper that spends everything in its
  // child contributes no folded line of its own.
  EXPECT_EQ(FoldedStacks(ProfileSnapshot{}), "");
}

TEST_F(PhaseProfilerTest, ProfilezJsonGoldenStructure) {
  internal::ProfilerEnterSpan("step");
  internal::ProfilerEnterSpan("step.sur_eval");
  internal::ProfilerExitSpan("step.sur_eval", 300);
  internal::ProfilerExitSpan("step", 1000);

  const std::string json = ProfilezJson(SnapshotProfile(), true);
  EXPECT_EQ(json.find("{\"enabled\":true,\"threads\":1,\"phases\":["), 0u);
  EXPECT_NE(json.find("{\"path\":\"step\",\"name\":\"step\",\"count\":1,"
                      "\"total_micros\":1000,\"self_micros\":700,"
                      "\"share_of_step\":1,"),
            std::string::npos);
  // share_of_step divides by the root "step" phase's total.
  EXPECT_NE(json.find("{\"path\":\"step;step.sur_eval\","
                      "\"name\":\"step.sur_eval\",\"count\":1,"
                      "\"total_micros\":300,\"self_micros\":300,"
                      "\"share_of_step\":0.3,"),
            std::string::npos);

  const std::string html = ProfilezHtml(SnapshotProfile(), true);
  EXPECT_NE(html.find("<title>geodp /profilez</title>"), std::string::npos);
  EXPECT_NE(html.find("step;step.sur_eval"), std::string::npos);

  // Empty snapshot, profiler off: the JSON still has the full shape.
  ResetProfile();
  EXPECT_EQ(ProfilezJson(SnapshotProfile(), false),
            "{\"enabled\":false,\"threads\":0,\"phases\":[]}");
}

TEST_F(PhaseProfilerTest, DisabledProfilerRecordsNothing) {
  DisableProfiling();
  internal::ProfilerEnterSpan("step");
  internal::ProfilerExitSpan("step", 1000);
  internal::ProfilerRecordLeaf("pool.part", 10);
  EXPECT_TRUE(SnapshotProfile().phases.empty());
  EXPECT_FALSE(ProfilingEnabled());
}

TEST_F(PhaseProfilerTest, TraceSpansFeedTheProfilerWhenEnabled) {
  { TraceSpan span("step"); }
  const ProfileSnapshot snapshot = SnapshotProfile();
  const PhaseStats* step = FindPhase(snapshot, "step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 1);
}

TEST_F(PhaseProfilerTest, ResetZeroesCountsWithoutDisabling) {
  internal::ProfilerEnterSpan("step");
  internal::ProfilerExitSpan("step", 100);
  ASSERT_FALSE(SnapshotProfile().phases.empty());
  ResetProfile();
  EXPECT_TRUE(SnapshotProfile().phases.empty());
  EXPECT_TRUE(ProfilingEnabled());
}

// --- Observability neutrality ------------------------------------------

InMemoryDataset SmallDataset(uint64_t seed) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 96;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = seed;
  return MakeSyntheticImages(data_options);
}

std::string RunTelemetry(const InMemoryDataset& train, int threads,
                         bool obs_on) {
  SetGlobalThreadCount(threads);
  if (obs_on) {
    EnableProfiling(std::string());
    FlightRecorder::Global().set_enabled(true);
  } else {
    DisableProfiling();
    FlightRecorder::Global().set_enabled(false);
  }
  Rng rng(42);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kGeoDp;
  options.beta = 0.05;
  options.batch_size = 16;
  options.iterations = 8;
  options.learning_rate = 0.5;
  options.noise_multiplier = 1.0;
  options.seed = 43;
  CollectingStepObserver observer;
  options.step_observer = &observer;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  trainer.Train();
  SetGlobalThreadCount(0);
  DisableProfiling();
  ResetProfile();
  FlightRecorder::Global().set_enabled(true);
  std::string serialized;
  for (const StepRecord& record : observer.records()) {
    serialized += StepRecordToJson(record) + "\n";
  }
  return serialized;
}

// The headline contract: the profiler and flight recorder never feed
// back into training. Telemetry bytes are identical with the full
// observability layer on or off, serial and parallel. CI re-proves this
// end-to-end over geodp_cli metrics files with cmp.
TEST(ObservabilityNeutralityTest, TelemetryBytesIdenticalOnVsOff) {
  const InMemoryDataset train = SmallDataset(41);
  const std::string off_serial = RunTelemetry(train, 1, false);
  const std::string on_serial = RunTelemetry(train, 1, true);
  const std::string off_parallel = RunTelemetry(train, 8, false);
  const std::string on_parallel = RunTelemetry(train, 8, true);
  EXPECT_FALSE(off_serial.empty());
  EXPECT_EQ(off_serial, on_serial);
  EXPECT_EQ(off_serial, off_parallel);
  EXPECT_EQ(off_serial, on_parallel);
}

}  // namespace
}  // namespace geodp
