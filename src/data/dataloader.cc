#include "data/dataloader.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace geodp {

BatchSampler::BatchSampler(int64_t dataset_size, int64_t batch_size,
                           uint64_t seed, bool shuffle)
    : dataset_size_(std::max<int64_t>(dataset_size, 0)),
      batch_size_(std::max<int64_t>(batch_size, 0)),
      shuffle_(shuffle),
      rng_(seed) {
  order_.resize(static_cast<size_t>(dataset_size_));
  std::iota(order_.begin(), order_.end(), 0);
  StartEpoch();
}

void BatchSampler::StartEpoch() {
  if (shuffle_) rng_.Shuffle(order_);
  cursor_ = 0;
}

std::vector<int64_t> BatchSampler::NextBatch() {
  // Zero-size dataset or batch: nothing to sample. Returning an empty
  // batch (instead of CHECK-aborting) lets the trainer report a
  // configuration error through Status.
  const int64_t effective = std::min(batch_size_, dataset_size_);
  if (effective == 0) return {};
  // Reshuffle only at batch boundaries: crossing an epoch edge mid-batch
  // would reshuffle the permutation while part of it is already in the
  // batch, so an example could be drawn twice. A duplicated example
  // contributes its clipped gradient twice, breaking the sensitivity-C
  // bound the noise is calibrated to. If fewer than batch_size indices
  // remain, the epoch tail is dropped (batches stay exactly batch_size,
  // matching the sensitivity analysis; the tail rejoins the next shuffle).
  if (cursor_ + effective > dataset_size_) StartEpoch();
  const auto first = order_.begin() + static_cast<int64_t>(cursor_);
  std::vector<int64_t> batch(first, first + effective);
  cursor_ += effective;
  return batch;
}

BatchSamplerState BatchSampler::ExportState() const {
  BatchSamplerState state;
  state.rng = rng_.ExportState();
  state.order = order_;
  state.cursor = cursor_;
  return state;
}

void BatchSampler::ImportState(const BatchSamplerState& state) {
  GEODP_CHECK_EQ(state.order.size(), order_.size());
  GEODP_CHECK(state.cursor >= 0 &&
              state.cursor <= static_cast<int64_t>(state.order.size()));
  rng_.ImportState(state.rng);
  order_ = state.order;
  cursor_ = state.cursor;
}

PoissonSampler::PoissonSampler(int64_t dataset_size, double sampling_rate,
                               uint64_t seed)
    : dataset_size_(std::max<int64_t>(dataset_size, 0)),
      sampling_rate_(std::clamp(sampling_rate, 0.0, 1.0)),
      rng_(seed) {}

std::vector<int64_t> PoissonSampler::NextBatch() {
  std::vector<int64_t> batch;
  for (int64_t i = 0; i < dataset_size_; ++i) {
    if (rng_.Uniform() < sampling_rate_) batch.push_back(i);
  }
  return batch;
}

RngState PoissonSampler::ExportState() const { return rng_.ExportState(); }

void PoissonSampler::ImportState(const RngState& state) {
  rng_.ImportState(state);
}

}  // namespace geodp
