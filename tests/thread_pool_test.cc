// Unit tests for the thread pool and ParallelFor: range/grain edge cases,
// exception propagation, nesting, chunk-structure invariance, and the
// --geodp_num_threads flag wiring.

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/flags.h"

namespace geodp {
namespace {

// Restores the default global thread count when a test ends so tests do
// not leak configuration into each other.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { SetGlobalThreadCount(0); }
};

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 3, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 2, [&](int64_t, int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleElementRange) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  std::atomic<int> calls{0};
  int64_t seen_lo = -1, seen_hi = -1;
  ParallelFor(3, 4, 10, [&](int64_t lo, int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 4);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 4, 8}) {
    SetGlobalThreadCount(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    ParallelFor(0, kN, 7, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) ++visits[static_cast<size_t>(i)];
    });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(8);
  std::atomic<int> chunks{0};
  ParallelForChunks(0, 5, 100, [&](int64_t chunk, int64_t lo, int64_t hi) {
    ++chunks;
    EXPECT_EQ(chunk, 0);
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 5);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPoolTest, ChunkStructureIsThreadCountInvariant) {
  ThreadCountGuard guard;
  auto decompose = [](int threads) {
    SetGlobalThreadCount(threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    std::set<int64_t> ids;
    ParallelForChunks(3, 250, 8, [&](int64_t chunk, int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({lo, hi});
      ids.insert(chunk);
    });
    return std::make_pair(chunks, ids);
  };
  const auto serial = decompose(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(decompose(threads), serial) << threads << " threads";
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    SetGlobalThreadCount(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](int64_t lo, int64_t) {
                      if (lo == 42) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  constexpr int64_t kOuter = 16, kInner = 32;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  ParallelFor(0, kOuter, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      // Runs serially (nested regions degrade to serial), must not
      // deadlock or double-visit.
      ParallelFor(0, kInner, 4, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          ++visits[static_cast<size_t>(o * kInner + i)];
        }
      });
    }
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, RunPartsExecutesEveryPartOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::vector<std::atomic<int>> parts(10);
  pool.RunParts(10, [&](int part) { ++parts[static_cast<size_t>(part)]; });
  for (const auto& count : parts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SerialPoolSpawnsNoWorkersAndStillRuns) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int sum = 0;
  pool.RunParts(5, [&](int part) { sum += part; });  // safe: serial
  EXPECT_EQ(sum, 10);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, SetGlobalThreadCountTakesEffect) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(3);
  EXPECT_EQ(GetGlobalThreadCount(), 3);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GetGlobalThreadCount(), 1);
  SetGlobalThreadCount(0);  // back to auto-detect
  EXPECT_GE(GetGlobalThreadCount(), 1);
}

TEST(ThreadPoolTest, NumThreadsFlagConfiguresGlobalPool) {
  ThreadCountGuard guard;
  FlagParser parser;
  AddCommonFlags(parser);
  const char* argv[] = {"prog", "--geodp_num_threads=5"};
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  ApplyCommonFlags(parser);
  EXPECT_EQ(GetGlobalThreadCount(), 5);
}

TEST(ThreadPoolTest, ZeroThreadsFlagKeepsCurrentDefault) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(2);
  FlagParser parser;
  AddCommonFlags(parser);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  ApplyCommonFlags(parser);  // default 0 = leave the pool alone
  EXPECT_EQ(GetGlobalThreadCount(), 2);
}

}  // namespace
}  // namespace geodp
