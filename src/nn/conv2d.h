// 2-D convolution with stride 1 and symmetric zero padding.

#ifndef GEODP_NN_CONV2D_H_
#define GEODP_NN_CONV2D_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/module.h"

namespace geodp {

/// Which convolution algorithm Conv2d uses.
enum class ConvImpl {
  kDirect,  // reference nested loops; easy to audit
  kIm2Col,  // lowering to matmul (nn/im2col.h); faster, default
};

/// Convolution mapping [B, in_channels, H, W] ->
/// [B, out_channels, H - k + 1 + 2p, W - k + 1 + 2p] with square kernels.
/// Two interchangeable implementations (tested to be bit-identical up to
/// float accumulation order): direct loops and im2col+matmul.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
         Rng& rng, int64_t padding = 0, bool with_bias = true,
         ConvImpl impl = ConvImpl::kIm2Col);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  // Ghost clipping via the im2col unfolding: sample b's weight gradient
  // is G_b = gy_b cols_b^T ([OC, IC*K*K]) — tiny next to a whole-model
  // per-sample gradient — so its norm is taken and G_b discarded, then a
  // second weighted pass accumulates. Works for both ConvImpl choices
  // (the gradient is implementation-independent).
  bool SupportsGhostClip() override { return true; }
  Tensor GhostBackward(
      const Tensor& grad_output,
      std::vector<double>& ghost_norm_sq) override;  // geodp: per-sample
  void GhostAccumulate(const std::vector<double>& weights) override;

  std::string name() const override { return "Conv2d"; }

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel_size() const { return kernel_size_; }
  int64_t padding() const { return padding_; }
  ConvImpl impl() const { return impl_; }

 private:
  Tensor ForwardDirect(const Tensor& input);
  Tensor BackwardDirect(const Tensor& grad_output);
  Tensor ForwardIm2Col(const Tensor& input);
  Tensor BackwardIm2Col(const Tensor& grad_output);

  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t padding_;
  bool with_bias_;
  ConvImpl impl_;
  Parameter weight_;  // [OC, IC, K, K]
  Parameter bias_;    // [OC]
  Tensor cached_input_;
  Tensor cached_grad_output_;  // set by GhostBackward for GhostAccumulate
  // Per-sample unfolded input, stored transposed ([B, OH*OW, IC*K*K]) so
  // both ghost passes feed sample b's gy_b [OC, OH*OW] straight into the
  // matmul kernel against cols_b^T without re-running im2col. Activation
  // footprint (O(batch * receptive fields)), not per-sample gradients.
  Tensor cached_columns_t_;
};

}  // namespace geodp

#endif  // GEODP_NN_CONV2D_H_
