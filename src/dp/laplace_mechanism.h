// Laplace mechanism for pure epsilon-DP releases. Not used by GeoDP itself
// (the paper follows the Gaussian mechanism) but provided for completeness
// of the DP substrate and as a baseline in the mechanism tests.

#ifndef GEODP_DP_LAPLACE_MECHANISM_H_
#define GEODP_DP_LAPLACE_MECHANISM_H_

#include "base/rng.h"
#include "tensor/tensor.h"

namespace geodp {

/// Parameters of a Laplace release: scale b = l1_sensitivity / epsilon.
struct LaplaceMechanismOptions {
  double l1_sensitivity = 1.0;
  double epsilon = 1.0;
};

/// Adds i.i.d. Laplace(l1_sensitivity / epsilon) noise.
class LaplaceMechanism {
 public:
  explicit LaplaceMechanism(LaplaceMechanismOptions options);

  /// Scale parameter b of the Laplace noise.
  double Scale() const;

  /// value + Laplace(Scale()).
  double Perturb(double value, Rng& rng) const;

  /// Elementwise perturbation of a tensor.
  Tensor Perturb(const Tensor& value, Rng& rng) const;

  const LaplaceMechanismOptions& options() const { return options_; }

 private:
  LaplaceMechanismOptions options_;
};

}  // namespace geodp

#endif  // GEODP_DP_LAPLACE_MECHANISM_H_
