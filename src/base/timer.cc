#include "base/timer.h"

namespace geodp {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

int64_t Timer::ElapsedMicros() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
      .count();
}

int64_t Timer::ProcessMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace geodp
