// im2col / col2im: lowering 2-D convolution to matrix multiplication.
// Used by Conv2d's fast path; the naive direct loops remain as the
// reference implementation the tests compare against.

#ifndef GEODP_NN_IM2COL_H_
#define GEODP_NN_IM2COL_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace geodp {

/// Unfolds one image [C, H, W] into a matrix [C*K*K, OH*OW] of receptive
/// fields for a KxK kernel with the given symmetric zero padding and
/// stride 1.
Tensor Im2Col(const Tensor& image, int64_t kernel_size, int64_t padding);

/// Raw-pointer Im2Col into a caller-owned buffer of C*K*K * OH*OW floats.
/// Lets batched callers unfold sample slices without staging each image
/// in its own tensor (Conv2d's ghost-clipping pass reuses one scratch
/// buffer across the whole batch this way).
void Im2ColInto(const float* image, int64_t channels, int64_t height,
                int64_t width, int64_t kernel_size, int64_t padding,
                float* columns);

/// Inverse scatter-add of Im2Col: folds columns [C*K*K, OH*OW] back into
/// an image [C, H, W], accumulating overlapping contributions. Used for
/// the input-gradient pass.
Tensor Col2Im(const Tensor& columns, int64_t channels, int64_t height,
              int64_t width, int64_t kernel_size, int64_t padding);

/// Raw-pointer Col2Im accumulating into a caller-owned image buffer of
/// C*H*W floats, which must be zeroed (or hold a partial sum to fold
/// onto) on entry.
void Col2ImInto(const float* columns, int64_t channels, int64_t height,
                int64_t width, int64_t kernel_size, int64_t padding,
                float* image);

}  // namespace geodp

#endif  // GEODP_NN_IM2COL_H_
