#include "nn/group_norm.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

GroupNorm::GroupNorm(int64_t channels, int64_t num_groups, double epsilon)
    : channels_(channels),
      num_groups_(num_groups),
      epsilon_(epsilon),
      gamma_("gamma", Tensor::Full({channels}, 1.0f)),
      beta_("beta", Tensor::Zeros({channels})) {
  GEODP_CHECK_GT(channels_, 0);
  GEODP_CHECK_GT(num_groups_, 0);
  GEODP_CHECK_EQ(channels_ % num_groups_, 0)
      << "num_groups must divide channels";
  GEODP_CHECK_GT(epsilon_, 0.0);
}

Tensor GroupNorm::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  GEODP_CHECK_EQ(input.dim(1), channels_);
  input_shape_ = input.shape();
  const int64_t batch = input.dim(0);
  const int64_t spatial = input.dim(2) * input.dim(3);
  const int64_t channels_per_group = channels_ / num_groups_;
  const int64_t group_size = channels_per_group * spatial;

  normalized_ = Tensor(input.shape());
  inv_std_.assign(static_cast<size_t>(batch * num_groups_), 0.0);

  Tensor output(input.shape());
  const float* x = input.data();
  float* xhat = normalized_.data();
  float* y = output.data();

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t g = 0; g < num_groups_; ++g) {
      const int64_t base = (b * channels_ + g * channels_per_group) * spatial;
      double mean = 0.0;
      for (int64_t i = 0; i < group_size; ++i)
        mean += static_cast<double>(x[base + i]);
      mean /= static_cast<double>(group_size);
      double var = 0.0;
      for (int64_t i = 0; i < group_size; ++i) {
        const double d = static_cast<double>(x[base + i]) - mean;
        var += d * d;
      }
      var /= static_cast<double>(group_size);
      const double inv_std = 1.0 / std::sqrt(var + epsilon_);
      inv_std_[static_cast<size_t>(b * num_groups_ + g)] = inv_std;
      for (int64_t i = 0; i < group_size; ++i) {
        const int64_t c = g * channels_per_group + i / spatial;
        const float normalized = static_cast<float>(
            (static_cast<double>(x[base + i]) - mean) * inv_std);
        xhat[base + i] = normalized;
        y[base + i] = gamma_.value[c] * normalized + beta_.value[c];
      }
    }
  }
  return output;
}

Tensor GroupNorm::Backward(const Tensor& grad_output) {
  GEODP_CHECK(grad_output.shape() == input_shape_);
  const int64_t batch = input_shape_[0];
  const int64_t spatial = input_shape_[2] * input_shape_[3];
  const int64_t channels_per_group = channels_ / num_groups_;
  const int64_t group_size = channels_per_group * spatial;

  Tensor grad_input(input_shape_);
  const float* gy = grad_output.data();
  const float* xhat = normalized_.data();
  float* gx = grad_input.data();

  // Per-channel affine gradients.
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels_; ++c) {
      const int64_t base = (b * channels_ + c) * spatial;
      double dgamma = 0.0, dbeta = 0.0;
      for (int64_t i = 0; i < spatial; ++i) {
        dgamma +=
            static_cast<double>(gy[base + i]) *
            static_cast<double>(xhat[base + i]);
        dbeta += static_cast<double>(gy[base + i]);
      }
      gamma_.grad[c] += static_cast<float>(dgamma);
      beta_.grad[c] += static_cast<float>(dbeta);
    }
  }

  // Input gradient: with u = gamma * dy,
  //   dx = inv_std * (u - mean(u) - xhat * mean(u * xhat)),
  // means taken over the group elements of one sample.
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t g = 0; g < num_groups_; ++g) {
      const int64_t base = (b * channels_ + g * channels_per_group) * spatial;
      const double inv_std =
          inv_std_[static_cast<size_t>(b * num_groups_ + g)];
      double mean_u = 0.0, mean_ux = 0.0;
      for (int64_t i = 0; i < group_size; ++i) {
        const int64_t c = g * channels_per_group + i / spatial;
        const double u = static_cast<double>(gamma_.value[c]) *
                         static_cast<double>(gy[base + i]);
        mean_u += u;
        mean_ux += u * static_cast<double>(xhat[base + i]);
      }
      mean_u /= static_cast<double>(group_size);
      mean_ux /= static_cast<double>(group_size);
      for (int64_t i = 0; i < group_size; ++i) {
        const int64_t c = g * channels_per_group + i / spatial;
        const double u = static_cast<double>(gamma_.value[c]) *
                         static_cast<double>(gy[base + i]);
        gx[base + i] = static_cast<float>(
            inv_std *
            (u - mean_u - static_cast<double>(xhat[base + i]) * mean_ux));
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> GroupNorm::Parameters() { return {&gamma_, &beta_}; }

}  // namespace geodp
