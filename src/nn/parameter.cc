#include "nn/parameter.h"

#include "base/check.h"

namespace geodp {

int64_t TotalParameterCount(const std::vector<Parameter*>& params) {
  int64_t total = 0;
  for (const Parameter* p : params) total += p->value.numel();
  return total;
}

Tensor FlattenValues(const std::vector<Parameter*>& params) {
  Tensor flat({std::max<int64_t>(TotalParameterCount(params), 1)});
  int64_t offset = 0;
  for (const Parameter* p : params) {
    for (int64_t i = 0; i < p->value.numel(); ++i) flat[offset++] = p->value[i];
  }
  return flat;
}

Tensor FlattenGradients(const std::vector<Parameter*>& params) {
  Tensor flat({std::max<int64_t>(TotalParameterCount(params), 1)});
  int64_t offset = 0;
  for (const Parameter* p : params) {
    for (int64_t i = 0; i < p->grad.numel(); ++i) flat[offset++] = p->grad[i];
  }
  return flat;
}

void SetValuesFromFlat(const std::vector<Parameter*>& params,
                       const Tensor& flat) {
  GEODP_CHECK_EQ(flat.numel(), TotalParameterCount(params));
  int64_t offset = 0;
  for (Parameter* p : params) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] = flat[offset++];
    }
  }
}

void ApplyFlatUpdate(const std::vector<Parameter*>& params,
                     const Tensor& flat_direction, double learning_rate) {
  GEODP_CHECK_EQ(flat_direction.numel(), TotalParameterCount(params));
  const float lr = static_cast<float>(learning_rate);
  int64_t offset = 0;
  for (Parameter* p : params) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value[i] -= lr * flat_direction[offset++];
    }
  }
}

void ZeroGradients(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.Fill(0.0f);
}

}  // namespace geodp
