// DP-Adam (extension, paper §VII future work): Adam moment estimation
// applied to the *noisy* flat gradient produced by any perturber. The
// privacy analysis is unchanged because Adam post-processes the private
// gradient.

#ifndef GEODP_OPTIM_DP_ADAM_H_
#define GEODP_OPTIM_DP_ADAM_H_

#include <cstdint>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace geodp {

/// Serializable snapshot of a FlatAdam: both moment vectors and the bias-
/// correction step counter.
struct FlatAdamState {
  Tensor m;
  Tensor v;
  int64_t step = 0;
};

/// Adam hyperparameters.
struct AdamOptions {
  double learning_rate = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam over a flat gradient vector, applied to a parameter list laid out
/// the same way FlattenGradients orders them.
class FlatAdam {
 public:
  FlatAdam(int64_t flat_dim, AdamOptions options);

  /// One Adam update using `flat_gradient` (typically a perturbed private
  /// gradient); writes the update into the parameters.
  void Step(const std::vector<Parameter*>& params,
            const Tensor& flat_gradient);

  int64_t step_count() const { return step_; }

  /// Checkpoint support: snapshot / restore moments and step counter.
  FlatAdamState ExportState() const;
  void ImportState(const FlatAdamState& state);

 private:
  AdamOptions options_;
  Tensor m_;  // first moment
  Tensor v_;  // second moment
  int64_t step_ = 0;
};

}  // namespace geodp

#endif  // GEODP_OPTIM_DP_ADAM_H_
