// Per-sample gradient clipping strategies.
//
// DP-SGD bounds each sample's contribution (the L2 sensitivity of the batch
// sum) by clipping every per-sample gradient to norm at most C before
// averaging. Besides the paper's flat clipping (Eq. 6) we implement the two
// state-of-the-art adaptive schemes the evaluation composes with GeoDP:
// AUTO-S automatic clipping (Bu et al., NeurIPS 2023) and PSAC per-sample
// adaptive clipping (Xia et al., AAAI 2023). All strategies keep the
// per-sample norm <= C, so the noise calibration is unchanged.

#ifndef GEODP_CLIP_CLIPPING_H_
#define GEODP_CLIP_CLIPPING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/units.h"
#include "tensor/tensor.h"

namespace geodp {

/// Interface: maps a per-sample gradient to its clipped form with
/// L2 norm <= clip_threshold(). Every shipped strategy is a pure rescale
/// g~ = s(||g||) * g, so subclasses implement only the scale function and
/// the accumulation path can fuse scale-and-add into one kernel pass.
class Clipper {
 public:
  virtual ~Clipper() = default;

  /// The multiplicative clip factor for a gradient of L2 norm `norm`.
  /// Must satisfy s(norm) * norm <= clip_threshold().
  virtual double ClipScale(double norm) const = 0;

  /// Returns the clipped copy ClipScale(||g||) * g of a (1-D, flattened)
  /// per-sample gradient.
  Tensor Clip(const Tensor& per_sample_gradient) const;

  /// Called once per optimizer step; adaptive schemes update internal
  /// schedules here. Default is a no-op.
  virtual void OnStep(int64_t step);

  /// Sensitivity bound C guaranteed by Clip().
  virtual double clip_threshold() const = 0;

  virtual std::string name() const = 0;
};

/// Flat clipping (Abadi et al. / paper Eq. 6):
///   g~ = g / max(1, ||g|| / C).
class FlatClipper : public Clipper {
 public:
  explicit FlatClipper(double clip_threshold);

  double ClipScale(double norm) const override;
  double clip_threshold() const override { return clip_threshold_; }
  std::string name() const override { return "flat"; }

 private:
  double clip_threshold_;
};

/// AUTO-S automatic clipping (Bu et al.):
///   g~ = C * g / (||g|| + gamma),
/// which normalizes every gradient to (just under) norm C and keeps a
/// small stability constant gamma so tiny gradients are not blown up.
class AutoSClipper : public Clipper {
 public:
  AutoSClipper(double clip_threshold, double gamma = 0.01);

  double ClipScale(double norm) const override;
  double clip_threshold() const override { return clip_threshold_; }
  std::string name() const override { return "AUTO-S"; }

 private:
  double clip_threshold_;
  double gamma_;
};

/// PSAC per-sample adaptive clipping (after Xia et al.): a non-monotonic
/// weight that damps very large gradients harder while preserving more of
/// the small ones:
///   g~ = C * g / (||g|| + r_t / (||g|| + gamma)),
/// with r_t decaying geometrically over steps. Norm is still < C. This is a
/// faithful-in-spirit reimplementation (see DESIGN.md substitutions).
class PsacClipper : public Clipper {
 public:
  PsacClipper(double clip_threshold, double r0 = 1.0, double decay = 0.999,
              double gamma = 0.01);

  double ClipScale(double norm) const override;
  void OnStep(int64_t step) override;
  double clip_threshold() const override { return clip_threshold_; }
  std::string name() const override { return "PSAC"; }

  /// Current adaptive radius r_t (exposed for tests).
  double current_radius() const { return radius_; }

 private:
  double clip_threshold_;
  double r0_;
  double decay_;
  double gamma_;
  double radius_;
};

/// True when `name` names a shipped clipping strategy ("flat", "AUTO-S",
/// "PSAC"). Config validation should consult this so MakeClipper only ever
/// sees known names.
bool IsKnownClipper(const std::string& name);

/// Factory by name: "flat", "AUTO-S", "PSAC". `name` must satisfy
/// IsKnownClipper (validated config); the threshold is strongly typed so a
/// noise multiplier cannot be transposed into the sensitivity bound.
std::unique_ptr<Clipper> MakeClipper(const std::string& name,
                                     ClipThreshold clip_threshold);

/// Clips every per-sample gradient with `clipper` and adds the clipped
/// gradients into `sum` (shapes must match). The dominant per-sample cost
/// of DP-SGD, parallelized across the batch on the global pool: each
/// ParallelFor chunk accumulates into its own partial sum and the partials
/// are reduced in chunk order, so the result is bit-identical at any
/// thread count. Clipper::Clip must be const-thread-safe (all shipped
/// clippers are: OnStep mutates, Clip only reads).
void AccumulateClipped(const std::vector<Tensor>& per_sample_gradients,
                       const Clipper& clipper, Tensor& sum);

/// Sum of the clipped per-sample gradients (parallel, thread-count
/// invariant). An empty batch — a normal occurrence under Poisson
/// sampling — yields an empty (zero-element) tensor, mirroring
/// AccumulateClipped's early return.
Tensor ClipAndSum(const std::vector<Tensor>& per_sample_gradients,
                  const Clipper& clipper);

}  // namespace geodp

#endif  // GEODP_CLIP_CLIPPING_H_
