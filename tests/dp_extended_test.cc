// Tests for the extended DP substrate: analytic Gaussian mechanism,
// budget-first calibration and the privacy ledger.

#include <cmath>

#include <gtest/gtest.h>

#include "dp/analytic_gaussian.h"
#include "dp/calibration.h"
#include "dp/gaussian_mechanism.h"
#include "dp/privacy_ledger.h"
#include "dp/rdp_accountant.h"

namespace geodp {
namespace {

TEST(AnalyticGaussianTest, StandardNormalCdfAnchors) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StandardNormalCdf(-1.96), 0.025, 1e-3);
}

TEST(AnalyticGaussianTest, DeltaDecreasesWithSigma) {
  const double d1 = AnalyticGaussianDelta(0.5, 1.0);
  const double d2 = AnalyticGaussianDelta(1.0, 1.0);
  const double d3 = AnalyticGaussianDelta(4.0, 1.0);
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
}

TEST(AnalyticGaussianTest, DeltaDecreasesWithEpsilon) {
  EXPECT_GT(AnalyticGaussianDelta(1.0, 0.5), AnalyticGaussianDelta(1.0, 2.0));
}

TEST(AnalyticGaussianTest, SigmaSolverRoundTrips) {
  for (double eps : {0.5, 1.0, 4.0}) {
    for (double delta : {1e-3, 1e-5, 1e-7}) {
      const double sigma = AnalyticGaussianSigma(eps, delta).value();
      EXPECT_NEAR(AnalyticGaussianDelta(sigma, eps), delta, delta * 0.05)
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(AnalyticGaussianTest, TighterThanClassicCalibration) {
  // The analytic mechanism never needs more noise than the classic bound
  // (valid for eps <= 1).
  for (double eps : {0.1, 0.5, 1.0}) {
    const double classic = GaussianSigmaForEpsilonDelta(eps, 1e-5);
    const double analytic = AnalyticGaussianSigma(eps, 1e-5).value();
    EXPECT_LE(analytic, classic * 1.001) << "eps=" << eps;
  }
}

TEST(CalibrationTest, EpsilonMonotoneInSigma) {
  const double hi =
      TrainingRunEpsilon(NoiseMultiplier(0.5), SamplingRate(0.01), 500,
                         Delta(1e-5)).value();
  const double lo =
      TrainingRunEpsilon(NoiseMultiplier(4.0), SamplingRate(0.01), 500,
                         Delta(1e-5)).value();
  EXPECT_GT(hi, lo);
}

TEST(CalibrationTest, SolverHitsTarget) {
  const double target = 4.0;
  const double sigma =
      NoiseMultiplierForTargetEpsilon(Epsilon(target), Delta(1e-5),
                                      SamplingRate(0.02), 800).value();
  const double achieved =
      TrainingRunEpsilon(NoiseMultiplier(sigma), SamplingRate(0.02), 800,
                         Delta(1e-5)).value();
  EXPECT_LE(achieved, target * 1.001);
  // Not grossly over-noised: a slightly smaller sigma would violate it.
  const double relaxed =
      TrainingRunEpsilon(NoiseMultiplier(sigma * 0.98), SamplingRate(0.02),
                         800, Delta(1e-5))
          .value();
  EXPECT_GT(relaxed, target * 0.98);
}

TEST(AnalyticGaussianTest, SigmaSolverRejectsBadInputs) {
  EXPECT_EQ(AnalyticGaussianSigma(-2.0, 1e-5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AnalyticGaussianSigma(1.0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AnalyticGaussianSigma(1.0, 1e-5, -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibrationTest, TrainingRunEpsilonRejectsBadInputs) {
  EXPECT_EQ(
      TrainingRunEpsilon(NoiseMultiplier(-1.0), SamplingRate(0.01), 100,
                         Delta(1e-5))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      TrainingRunEpsilon(NoiseMultiplier(1.0), SamplingRate(1.5), 100,
                         Delta(1e-5))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      TrainingRunEpsilon(NoiseMultiplier(1.0), SamplingRate(0.01), -1,
                         Delta(1e-5))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      TrainingRunEpsilon(NoiseMultiplier(1.0), SamplingRate(0.01), 100,
                         Delta(2.0))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(CalibrationTest, SolverRejectsBadInputs) {
  EXPECT_EQ(
      NoiseMultiplierForTargetEpsilon(Epsilon(0.0), Delta(1e-5),
                                      SamplingRate(0.01), 100).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      NoiseMultiplierForTargetEpsilon(Epsilon(1.0), Delta(1e-5),
                                      SamplingRate(0.01), 0).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      NoiseMultiplierForTargetEpsilon(Epsilon(1.0), Delta(1e-5),
                                      SamplingRate(2.0), 100).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(CalibrationTest, TighterBudgetNeedsMoreNoise) {
  const double sigma_tight =
      NoiseMultiplierForTargetEpsilon(Epsilon(1.0), Delta(1e-5),
                                      SamplingRate(0.01), 500).value();
  const double sigma_loose =
      NoiseMultiplierForTargetEpsilon(Epsilon(8.0), Delta(1e-5),
                                      SamplingRate(0.01), 500).value();
  EXPECT_GT(sigma_tight, sigma_loose);
}

TEST(PrivacyLedgerTest, CountsReleases) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(1.0), SamplingRate(0.01),
                                  100, "training");
  ledger.RecordGaussian(NoiseMultiplier(2.0), 1, "final release");
  ledger.RecordLaplace(Epsilon(0.1), 2, "hyperparameter queries");
  EXPECT_EQ(ledger.events().size(), 3u);
  EXPECT_EQ(ledger.TotalReleases(), 103);
}

TEST(PrivacyLedgerTest, ComposedGuaranteeMatchesAccountant) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(1.0), SamplingRate(0.01),
                                  200);
  const PrivacyGuarantee guarantee = ledger.ComposedGuarantee(Delta(1e-5));
  EXPECT_NEAR(guarantee.epsilon,
              TrainingRunEpsilon(NoiseMultiplier(1.0), SamplingRate(0.01), 200,
                                 Delta(1e-5)).value(),
              1e-9);
  EXPECT_DOUBLE_EQ(guarantee.delta, 1e-5);
}

TEST(PrivacyLedgerTest, LaplaceAddsPureEpsilon) {
  PrivacyLedger ledger;
  ledger.RecordLaplace(Epsilon(0.25), 4);
  const PrivacyGuarantee guarantee = ledger.ComposedGuarantee(Delta(1e-5));
  EXPECT_NEAR(guarantee.epsilon, 1.0, 1e-12);
  EXPECT_EQ(guarantee.delta, 0.0);  // pure epsilon-DP, no Gaussian events
}

TEST(PrivacyLedgerTest, MixedEventsCompose) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(2.0), SamplingRate(0.01),
                                  100);
  ledger.RecordLaplace(Epsilon(0.5), 1);
  const PrivacyGuarantee guarantee = ledger.ComposedGuarantee(Delta(1e-5));
  EXPECT_NEAR(
      guarantee.epsilon,
      TrainingRunEpsilon(NoiseMultiplier(2.0), SamplingRate(0.01), 100,
                         Delta(1e-5)).value() + 0.5,
      1e-9);
}

TEST(PrivacyLedgerTest, ReportMentionsEventsAndGuarantee) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(1.0), SamplingRate(0.05), 10,
                                  "demo");
  const std::string report = ledger.Report(Delta(1e-5));
  EXPECT_NE(report.find("subsampled-gaussian"), std::string::npos);
  EXPECT_NE(report.find("demo"), std::string::npos);
  EXPECT_NE(report.find(")-DP"), std::string::npos);
}

TEST(PrivacyLedgerTest, ReportStatesRequestedDeltaForPureLaplace) {
  // Regression: a pure-Laplace ledger composes to (eps, 0)-DP, and the
  // report used to show only that 0 — leaving the delta the caller asked
  // about out of the audit trail entirely.
  PrivacyLedger ledger;
  ledger.RecordLaplace(Epsilon(0.25), 4, "hyperparameter queries");
  const std::string report = ledger.Report(Delta(1e-5));
  EXPECT_NE(report.find("requested delta=1e-05"), std::string::npos);
  // No Gaussian events: no RDP order to report.
  EXPECT_EQ(report.find("optimal RDP order"), std::string::npos);
}

TEST(PrivacyLedgerTest, ReportSurfacesOptimalRdpOrder) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(1.0), SamplingRate(0.01),
                                  500);
  const int64_t order = ledger.OptimalOrder(Delta(1e-5));
  EXPECT_GT(order, 0);
  const std::string report = ledger.Report(Delta(1e-5));
  EXPECT_NE(
      report.find("optimal RDP order: " + std::to_string(order)),
      std::string::npos);
  EXPECT_NE(report.find("requested delta="), std::string::npos);
}

TEST(PrivacyLedgerTest, OptimalOrderMatchesAccountant) {
  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(1.5), SamplingRate(0.02),
                                  300);
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(1.5),
                                        SamplingRate(0.02), 300);
  EXPECT_EQ(ledger.OptimalOrder(Delta(1e-5)),
            accountant.GetOptimalOrder(Delta(1e-5)));
  // Laplace events do not disturb the Gaussian order.
  ledger.RecordLaplace(Epsilon(0.1));
  EXPECT_EQ(ledger.OptimalOrder(Delta(1e-5)),
            accountant.GetOptimalOrder(Delta(1e-5)));
}

}  // namespace
}  // namespace geodp
