#include "nn/linear.h"

#include "base/check.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace geodp {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_("weight",
              KaimingUniform({out_features, in_features}, in_features, rng)),
      bias_("bias", Tensor::Zeros({out_features})) {
  GEODP_CHECK_GT(in_features_, 0);
  GEODP_CHECK_GT(out_features_, 0);
}

Tensor Linear::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 2);
  GEODP_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  // y[b, o] = sum_i x[b, i] * W[o, i] + bias[o]
  Tensor output = Matmul(input, Transpose(weight_.value));
  if (with_bias_) {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t o = 0; o < out_features_; ++o) {
        output[b * out_features_ + o] += bias_.value[o];
      }
    }
  }
  return output;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 2);
  GEODP_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  GEODP_CHECK_EQ(grad_output.dim(1), out_features_);
  const int64_t batch = grad_output.dim(0);
  // dW[o, i] += sum_b dy[b, o] * x[b, i]
  weight_.grad.AddInPlace(Matmul(Transpose(grad_output), cached_input_));
  if (with_bias_) {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t o = 0; o < out_features_; ++o) {
        bias_.grad[o] += grad_output[b * out_features_ + o];
      }
    }
  }
  // dx[b, i] = sum_o dy[b, o] * W[o, i]
  return Matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::Parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace geodp
