// Ghost clipping: the clip-boundary half of per-sample-gradient-free
// DP-SGD. The layers compute each sample's squared gradient L2 norm
// directly from activations and backprops (Goodfellow's trick for Linear,
// the im2col analog for Conv2d) without ever materializing the gradient;
// this file turns those norms into the per-sample weights of two weighted
// accumulation passes (clipped sum and raw reference sum). Sensitivity is
// unchanged relative to the materialized path: weight clipped[b] is
// exactly Clipper::ClipScale(norm_b), so sample b's contribution to the
// clipped sum has L2 norm <= C.

#ifndef GEODP_CLIP_GHOST_CLIPPING_H_
#define GEODP_CLIP_GHOST_CLIPPING_H_

#include <cstdint>
#include <vector>

#include "clip/clipping.h"

namespace geodp {

/// Per-batch outcome of converting ghost norms into accumulation weights.
struct GhostBatchWeights {
  // Clip scale per sample: multiplying sample b's gradient by clipped[b]
  // bounds its L2 norm by the clipper's threshold. Exactly 0.0 for
  // excluded (non-finite) samples — consumers skip those structurally.
  std::vector<double> clipped;
  // 1.0 per included sample, 0.0 for excluded ones: the weights of the
  // noise-free raw reference sum.
  std::vector<double> raw;
  // Pre-clip per-sample gradient norms, batch order (telemetry; holds the
  // raw, possibly non-finite values for excluded samples).
  std::vector<double> norms;
  int64_t included = 0;            // samples with finite loss and norm
  int64_t nonfinite_skipped = 0;   // samples excluded by the finite guard
  double included_loss_sum = 0.0;  // sum of losses over included samples
};

/// Bridges ghost-norm bookkeeping to the Clipper interface. Mirrors the
/// materialized path's non-finite guard: a sample whose loss or gradient
/// norm is NaN/Inf gets weight exactly 0.0 in both passes (zero
/// contribution, sensitivity bound unaffected) and is counted.
class GhostClipper {
 public:
  /// Keeps a reference; `clipper` must outlive this object.
  explicit GhostClipper(const Clipper& clipper) : clipper_(clipper) {}

  /// ghost_norm_sq[b] is sample b's squared gradient norm summed over all
  /// layers; sample_losses[b] its loss. Both are batch-ordered and must
  /// have equal size.
  GhostBatchWeights Weights(const std::vector<double>& ghost_norm_sq,
                            const std::vector<double>& sample_losses) const;

  const Clipper& clipper() const { return clipper_; }

 private:
  const Clipper& clipper_;
};

}  // namespace geodp

#endif  // GEODP_CLIP_GHOST_CLIPPING_H_
