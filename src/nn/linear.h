// Fully connected layer: y = x W^T + b.

#ifndef GEODP_NN_LINEAR_H_
#define GEODP_NN_LINEAR_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/module.h"

namespace geodp {

/// Dense layer mapping [B, in_features] -> [B, out_features].
/// Weight shape [out_features, in_features]; bias shape [out_features].
class Linear : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool with_bias = true);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  // Ghost clipping (Goodfellow factorization): per-sample
  // ||dW_b||^2 = ||dy_b||^2 * ||x_b||^2 (+ ||dy_b||^2 for the bias) from
  // the cached activations, no per-sample gradient ever materialized.
  bool SupportsGhostClip() override { return true; }
  Tensor GhostBackward(
      const Tensor& grad_output,
      std::vector<double>& ghost_norm_sq) override;  // geodp: per-sample
  void GhostAccumulate(const std::vector<double>& weights) override;

  std::string name() const override { return "Linear"; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  Tensor cached_grad_output_;  // set by GhostBackward for GhostAccumulate
};

}  // namespace geodp

#endif  // GEODP_NN_LINEAR_H_
