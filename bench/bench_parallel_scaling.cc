// Thread-scaling benchmark for the parallel execution subsystem: each
// workload runs at 1/2/4/8 threads (the first benchmark argument) so the
// reported times give the speedup curve directly. Workloads:
//
//   BM_ClipAccumulate  per-sample clip-and-accumulate, the dominant cost
//                      of DP-SGD (ClipAndSum over a synthetic batch)
//   BM_ClipPerturb     full private release: clip+accumulate, average,
//                      then DP or GeoDP perturbation
//   BM_MatMul          tiled parallel Matmul
//   BM_BatchSpherical  batched ToSpherical/ToCartesian round trip
//
// On a machine with >= 4 cores the clip+accumulate workload is expected
// to reach >= 2.5x at 4 threads (it is embarrassingly parallel with one
// reduction); results are bit-identical across all thread counts by the
// ParallelFor determinism contract.

#include <benchmark/benchmark.h>

#include <vector>

#include "base/rng.h"
#include "common/bench_json.h"
#include "base/thread_pool.h"
#include "clip/clipping.h"
#include "core/perturbation.h"
#include "core/spherical.h"
#include "optim/geodp_sgd.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

std::vector<Tensor> MakeBatch(int64_t batch, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> grads;
  grads.reserve(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    grads.push_back(Tensor::Randn({dim}, rng));
  }
  return grads;
}

// Pins the global pool to state.range(0) threads for the benchmark body
// and restores the default afterwards.
class ThreadCountFixture {
 public:
  explicit ThreadCountFixture(int num_threads) {
    SetGlobalThreadCount(num_threads);
  }
  ~ThreadCountFixture() { SetGlobalThreadCount(0); }
};

void BM_ClipAccumulate(benchmark::State& state) {
  const ThreadCountFixture fixture(static_cast<int>(state.range(0)));
  const int64_t batch = state.range(1);
  const int64_t dim = state.range(2);
  const std::vector<Tensor> grads = MakeBatch(batch, dim, 7);
  const FlatClipper clipper(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClipAndSum(grads, clipper));
  }
  state.SetItemsProcessed(state.iterations() * batch * dim);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_ClipPerturb(benchmark::State& state) {
  const ThreadCountFixture fixture(static_cast<int>(state.range(0)));
  const int64_t batch = state.range(1);
  const int64_t dim = state.range(2);
  const std::vector<Tensor> grads = MakeBatch(batch, dim, 11);
  const FlatClipper clipper(0.1);
  GeoDpOptions options;
  options.base.clip_threshold = 0.1;
  options.base.batch_size = batch;
  options.base.noise_multiplier = 1.0;
  options.beta = 0.1;
  const GeoDpPerturber perturber(options);
  Rng rng(13);
  for (auto _ : state) {
    Tensor avg = ClipAndSum(grads, clipper);
    avg.ScaleInPlace(1.0f / static_cast<float>(batch));
    benchmark::DoNotOptimize(perturber.Perturb(avg, rng));
  }
  state.SetItemsProcessed(state.iterations() * batch * dim);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_MatMul(benchmark::State& state) {
  const ThreadCountFixture fixture(static_cast<int>(state.range(0)));
  const int64_t n = state.range(1);
  Rng rng(17);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_BatchSpherical(benchmark::State& state) {
  const ThreadCountFixture fixture(static_cast<int>(state.range(0)));
  const std::vector<Tensor> grads = MakeBatch(state.range(1), state.range(2), 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchToCartesian(BatchToSpherical(grads)));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void ThreadArgs(benchmark::internal::Benchmark* b,
                std::initializer_list<int64_t> rest) {
  for (int64_t threads : {1, 2, 4, 8}) {
    std::vector<int64_t> args = {threads};
    args.insert(args.end(), rest.begin(), rest.end());
    b->Args(args);
  }
}

BENCHMARK(BM_ClipAccumulate)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadArgs(b, {256, 4096});
    })
    ->ArgNames({"threads", "batch", "dim"});
BENCHMARK(BM_ClipPerturb)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadArgs(b, {256, 4096});
    })
    ->ArgNames({"threads", "batch", "dim"});
BENCHMARK(BM_MatMul)
    ->Apply([](benchmark::internal::Benchmark* b) { ThreadArgs(b, {256}); })
    ->ArgNames({"threads", "n"});
BENCHMARK(BM_BatchSpherical)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadArgs(b, {64, 2048});
    })
    ->ArgNames({"threads", "batch", "dim"});

}  // namespace
}  // namespace geodp

int main(int argc, char** argv) {
  return geodp::bench::BenchmarkMainWithJson(argc, argv);
}
