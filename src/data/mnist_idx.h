// Loader for the original MNIST IDX file format (big-endian magic + dims
// + raw bytes). The experiments in this repo default to the procedural
// stand-in datasets (the environment is offline), but a downstream user
// with the real files can drop them in:
//
//   auto train = LoadMnistIdx("train-images-idx3-ubyte",
//                             "train-labels-idx1-ubyte");
//
// Pixels are scaled to [0, 1] and images shaped [1, rows, cols].

#ifndef GEODP_DATA_MNIST_IDX_H_
#define GEODP_DATA_MNIST_IDX_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "data/dataset.h"

namespace geodp {

/// Loads an IDX3 image file + IDX1 label file pair. `max_examples` of 0
/// loads everything; otherwise the first `max_examples` pairs. Fails with
/// a descriptive status on bad magic, size mismatch or truncation.
StatusOr<InMemoryDataset> LoadMnistIdx(const std::string& images_path,
                                       const std::string& labels_path,
                                       int64_t max_examples = 0);

/// Writes a dataset back out as an IDX pair (used by tests and to export
/// synthetic datasets in a format other tools read). Pixel values are
/// clamped to [0, 1] and quantized to bytes.
Status SaveMnistIdx(const InMemoryDataset& dataset,
                    const std::string& images_path,
                    const std::string& labels_path);

}  // namespace geodp

#endif  // GEODP_DATA_MNIST_IDX_H_
