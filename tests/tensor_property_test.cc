// Property-based parameterized sweeps over the tensor substrate and the
// hyper-spherical conversions: algebraic identities across shapes, norm
// homogeneity, serialization round trips, and conversions under extreme
// magnitudes.

#include <cmath>
#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/spherical.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

class MatmulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(MatmulPropertyTest, MatchesNaiveTripleLoop) {
  const auto& [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  const Tensor c = Matmul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        expected += static_cast<double>(a[i * k + kk]) *
                    static_cast<double>(b[kk * n + j]);
      }
      EXPECT_NEAR(c[i * n + j], expected, 1e-3)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(MatmulPropertyTest, TransposeIdentity) {
  // (A B)^T == B^T A^T.
  const auto& [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k + n));
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  EXPECT_TRUE(AllClose(Transpose(Matmul(a, b)),
                       Matmul(Transpose(b), Transpose(a)), 1e-4, 1e-4));
}

TEST_P(MatmulPropertyTest, DistributesOverAddition) {
  const auto& [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 7 + k * 3 + n));
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b1 = Tensor::Randn({k, n}, rng);
  const Tensor b2 = Tensor::Randn({k, n}, rng);
  EXPECT_TRUE(AllClose(Matmul(a, Add(b1, b2)),
                       Add(Matmul(a, b1), Matmul(a, b2)), 1e-4, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulPropertyTest,
    ::testing::Values(std::make_tuple<int64_t, int64_t, int64_t>(1, 1, 1),
                      std::make_tuple<int64_t, int64_t, int64_t>(2, 3, 4),
                      std::make_tuple<int64_t, int64_t, int64_t>(5, 1, 7),
                      std::make_tuple<int64_t, int64_t, int64_t>(8, 8, 8),
                      std::make_tuple<int64_t, int64_t, int64_t>(1, 16, 3),
                      std::make_tuple<int64_t, int64_t, int64_t>(13, 5, 2)));

class NormPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(NormPropertyTest, Homogeneity) {
  // ||c * x|| == |c| * ||x||.
  const int64_t n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Tensor x = Tensor::Randn({n}, rng);
  for (float c : {-2.5f, 0.0f, 0.5f, 7.0f}) {
    EXPECT_NEAR(Scale(x, c).L2Norm(),
                std::fabs(static_cast<double>(c)) * x.L2Norm(),
                1e-4 * (1.0 + x.L2Norm()));
  }
}

TEST_P(NormPropertyTest, TriangleInequality) {
  const int64_t n = GetParam();
  Rng rng(static_cast<uint64_t>(n) + 99);
  const Tensor x = Tensor::Randn({n}, rng);
  const Tensor y = Tensor::Randn({n}, rng);
  EXPECT_LE(Add(x, y).L2Norm(), x.L2Norm() + y.L2Norm() + 1e-5);
}

TEST_P(NormPropertyTest, CauchySchwarz) {
  const int64_t n = GetParam();
  Rng rng(static_cast<uint64_t>(n) + 7);
  const Tensor x = Tensor::Randn({n}, rng);
  const Tensor y = Tensor::Randn({n}, rng);
  EXPECT_LE(std::fabs(Dot(x, y)), x.L2Norm() * y.L2Norm() + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormPropertyTest,
                         ::testing::Values<int64_t>(1, 2, 5, 32, 257));

class SerializationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationPropertyTest, RandomShapeRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const int ndim = 1 + static_cast<int>(rng.UniformInt(4));
  std::vector<int64_t> shape;
  for (int i = 0; i < ndim; ++i) {
    shape.push_back(1 + static_cast<int64_t>(rng.UniformInt(6)));
  }
  const Tensor original = Tensor::Randn(shape, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTensor(original, buffer).ok());
  StatusOr<Tensor> restored = ReadTensor(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().shape(), original.shape());
  EXPECT_TRUE(AllClose(restored.value(), original, 0.0, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Trials, SerializationPropertyTest,
                         ::testing::Range(0, 8));

class SphericalScalePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SphericalScalePropertyTest, RoundTripAtExtremeMagnitudes) {
  const double scale = GetParam();
  Rng rng(404);
  Tensor g = Tensor::Randn({24}, rng);
  g.ScaleInPlace(static_cast<float>(scale / g.L2Norm()));
  const Tensor back = ToCartesian(ToSpherical(g));
  EXPECT_LT(MaxAbsDiff(g, back), 1e-4 * scale + 1e-7) << "scale=" << scale;
  EXPECT_NEAR(ToSpherical(g).magnitude, scale, 1e-4 * scale + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SphericalScalePropertyTest,
                         ::testing::Values(1e-6, 1e-3, 1.0, 1e3, 1e6));

TEST(SphericalEdgeCaseTest, SingleNonZeroTailComponent) {
  // Vector whose only mass is in the last coordinate exercises the
  // atan2(y, 0) branches.
  Tensor g({5});
  g[4] = -3.0f;
  const Tensor back = ToCartesian(ToSpherical(g));
  EXPECT_LT(MaxAbsDiff(g, back), 1e-5);
}

TEST(SphericalEdgeCaseTest, NearlyParallelVectorsHaveTinyAngleDistance) {
  Rng rng(505);
  const Tensor g = Tensor::Randn({16}, rng);
  Tensor g2 = g;
  g2[3] += 1e-4f;
  const double distance = AngleSquaredDistance(
      ToSpherical(g).angles, ToSpherical(g2).angles);
  EXPECT_LT(distance, 1e-4);
}

TEST(ReshapePropertyTest, ChainsPreserveFlatOrder) {
  Rng rng(606);
  const Tensor t = Tensor::Randn({2, 3, 4}, rng);
  const Tensor r = t.Reshape({4, 6}).Reshape({24}).Reshape({3, -1});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], r[i]);
}

}  // namespace
}  // namespace geodp
