// Durable full-state training checkpoints (GDPK format).
//
// A TrainingCheckpoint captures EVERYTHING the training loop needs to
// continue bit-identically after a crash: model parameters, optimizer
// moments, every RNG stream, sampler positions, the privacy accountant and
// ledger, the adaptive-beta envelope, and the partial TrainingResult.
// Resuming from step k and running to T produces byte-identical metrics
// JSONL, model weights, and epsilon to an uninterrupted run — the repo's
// headline crash-safety guarantee (docs/fault_tolerance.md).
//
// File format (little-endian):
//   "GDPK"            magic, 4 bytes
//   u32  version      currently 1
//   u64  payload_len  byte length of the payload section
//   payload           ByteWriter-encoded fields (checkpoint.cc)
//   u32  crc32        CRC-32 (IEEE) of the payload bytes
//
// Durability protocol: the file is written to "<path>.tmp", flushed,
// fsynced, then renamed over the final path (atomic on POSIX), and the
// directory is fsynced. A crash at any point leaves either the previous
// checkpoint or the new one — never a half-written final file. Corruption
// that slips through anyway (torn writes on non-POSIX semantics, bit rot)
// is caught by the length/CRC checks, and FindLatestGoodCheckpoint falls
// back to the newest checkpoint that still validates.

#ifndef GEODP_CKPT_CHECKPOINT_H_
#define GEODP_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "data/dataloader.h"
#include "dp/privacy_ledger.h"
#include "optim/adaptive_beta.h"
#include "optim/dp_adam.h"
#include "optim/techniques.h"
#include "tensor/tensor.h"

namespace geodp {

/// Complete training state at an attempt boundary. Plain data; the trainer
/// fills and consumes it (optim/trainer.cc).
struct TrainingCheckpoint {
  // -- Progress --------------------------------------------------------
  int64_t next_attempt = 0;      // first attempt index not yet executed
  int64_t accepted_updates = 0;  // training iterations completed

  // -- Partial TrainingResult ------------------------------------------
  std::vector<int64_t> loss_iterations;
  std::vector<double> loss_history;
  int64_t empty_lots = 0;
  int64_t nonfinite_skipped = 0;
  int64_t sur_accepted = 0;
  int64_t sur_rejected = 0;
  double current_beta = 0.0;

  // -- Model parameters (names validated on restore) -------------------
  std::vector<std::string> param_names;
  std::vector<Tensor> param_values;

  // -- RNG streams and samplers ----------------------------------------
  RngState noise_rng;
  BatchSamplerState uniform_sampler;
  RngState poisson_rng;
  ImportanceSamplerState importance_sampler;

  // -- Optimizer -------------------------------------------------------
  FlatAdamState adam;

  // -- Privacy accounting ----------------------------------------------
  std::vector<int64_t> accountant_orders;
  std::vector<double> accountant_rdp;
  int64_t accountant_steps = 0;
  std::vector<PrivacyEvent> ledger_events;

  // -- Adaptive beta ---------------------------------------------------
  AdaptiveBetaState beta_controller;

  // -- Configuration fingerprint ---------------------------------------
  // Canonical string of every option that affects the trajectory
  // (trainer.cc builds it; `iterations` is deliberately excluded so a
  // resumed run may extend training). Resume refuses a mismatch.
  std::string options_fingerprint;
};

/// Canonical file name for a checkpoint taken with `next_attempt` attempts
/// completed: "ckpt_<zero-padded attempt>.gdpk". Zero padding makes
/// lexicographic order equal numeric order.
std::string CheckpointFileName(int64_t next_attempt);

/// Canonical file name for a flight-recorder postmortem dump written next
/// to the checkpoints: "postmortem-<zero-padded step>.json". Deliberately
/// outside the "ckpt_*.gdpk" pattern, so checkpoint scanning and pruning
/// never touch postmortems.
std::string PostmortemFileName(int64_t step);

/// Serializes `checkpoint` and writes it durably to `path` using the
/// temp-file + fsync + rename protocol above (base/io/file_io.h). Creates
/// the parent directory if needed. Honors the "ckpt.before_write" /
/// "ckpt.write" / "ckpt.write_io" / "ckpt.before_rename" fail points
/// (base/fault_injection.h); transient errnos at "ckpt.write_io" are
/// retried per the default RetryPolicy.
Status SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                              const std::string& path);

/// Reads and validates a checkpoint file. Any structural problem —
/// truncation, bad magic, unknown version, length mismatch, CRC mismatch,
/// malformed payload — yields a descriptive non-OK Status, never a crash.
StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path);

/// Result of scanning a checkpoint directory.
struct FoundCheckpoint {
  TrainingCheckpoint checkpoint;
  std::string path;
  // Newer checkpoint files that failed validation and were skipped (e.g. a
  // torn write that slipped past rename atomicity).
  int64_t skipped_corrupt = 0;
};

/// Scans `dir` for "ckpt_*.gdpk" files and returns the newest one that
/// validates, skipping corrupt files. NotFound when the directory holds no
/// loadable checkpoint.
StatusOr<FoundCheckpoint> FindLatestGoodCheckpoint(const std::string& dir);

/// Deletes all but the newest `keep` checkpoint files in `dir`. Keeping
/// more than one means a corrupt newest file still leaves a fallback.
/// Best-effort: unreadable directories or undeletable files are never
/// fatal — each failed unlink (including ones injected at the
/// "ckpt.prune" fail point) is counted in the returned error tally so
/// the trainer can surface it as the ckpt.prune_errors counter.
int64_t PruneOldCheckpoints(const std::string& dir, int64_t keep);

}  // namespace geodp

#endif  // GEODP_CKPT_CHECKPOINT_H_
