// Peak resident-set size of the current process, for the memory column of
// --bench_json_out records. Peak RSS is monotone over a process lifetime,
// so benches comparing the footprint of two code paths must run the
// expected-smaller path FIRST — its row then reflects an honest peak,
// while the larger path's row includes everything before it.

#ifndef GEODP_BENCH_COMMON_PEAK_RSS_H_
#define GEODP_BENCH_COMMON_PEAK_RSS_H_

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace geodp {
namespace bench {

/// Peak RSS in MiB, 0.0 where the platform offers no getrusage. Linux
/// reports ru_maxrss in KiB, macOS in bytes.
inline double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

}  // namespace bench
}  // namespace geodp

#endif  // GEODP_BENCH_COMMON_PEAK_RSS_H_
