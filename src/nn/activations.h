// Elementwise activation layers.

#ifndef GEODP_NN_ACTIVATIONS_H_
#define GEODP_NN_ACTIVATIONS_H_

#include <string>

#include "nn/module.h"

namespace geodp {

/// Rectified linear unit, any input shape.
class ReLU : public Layer {
 public:
  ReLU() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Hyperbolic tangent, any input shape.
class Tanh : public Layer {
 public:
  Tanh() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;  // cached tanh(x)
};

/// Logistic sigmoid, any input shape.
class Sigmoid : public Layer {
 public:
  Sigmoid() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;  // cached sigmoid(x)
};

/// Leaky rectifier: x for x > 0, slope * x otherwise.
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor mask_;  // 1 where input > 0, slope elsewhere
};

}  // namespace geodp

#endif  // GEODP_NN_ACTIVATIONS_H_
