#include "optim/dp_sgd.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/thread_pool.h"
#include "nn/parameter.h"
#include "obs/trace.h"
#include "stats/metrics.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

// Per-sample gradients are staged in blocks of this many samples: the
// backward passes fill a block serially (modules cache activations, so
// the model itself is not thread-safe), then the block's clip-and-
// accumulate — the dominant per-sample cost — runs in parallel across
// the pool. The block size also bounds staging memory to
// kPipelineBlock * flat_dim floats. Block boundaries are a compile-time
// constant, so the reduction order (and hence the result bits) does not
// depend on the thread count.
constexpr size_t kPipelineBlock = 64;

}  // namespace

PrivateBatchGradient ComputePerSampleGradients(
    Sequential& model, SoftmaxCrossEntropy& loss,
    const InMemoryDataset& dataset, const std::vector<int64_t>& indices,
    const Clipper& clipper, bool record_sample_norms) {
  GEODP_CHECK(!indices.empty());
  const std::vector<Parameter*> params = model.Parameters();
  const int64_t flat_dim = TotalParameterCount(params);

  PrivateBatchGradient result;
  result.batch_size = static_cast<int64_t>(indices.size());
  result.averaged_clipped = Tensor({flat_dim});
  result.averaged_raw = Tensor({flat_dim});
  result.sample_losses.reserve(indices.size());
  if (record_sample_norms)
    result.sample_grad_norms.reserve(indices.size());  // geodp: per-sample

  std::vector<Tensor> block;
  block.reserve(std::min(kPipelineBlock, indices.size()));
  int64_t finite_samples = 0;
  size_t pos = 0;
  while (pos < indices.size()) {
    const size_t block_end =
        std::min(pos + kPipelineBlock, indices.size());
    {
      const TraceSpan span("step.forward_backward");
      for (; pos < block_end; ++pos) {
        const int64_t index = indices[pos];
        ZeroGradients(params);
        const Tensor x = dataset.StackImages({index});
        const std::vector<int64_t> y = {dataset.label(index)};
        const double sample_loss = loss.Forward(model.Forward(x), y);
        model.Backward(loss.Backward());
        Tensor grad = FlattenGradients(params);
        // Any non-finite gradient element makes the L2 norm non-finite,
        // so one norm (a pass the clipper needs anyway, orders of
        // magnitude cheaper than the backward pass) detects NaN/Inf
        // poisoning. Such samples are dropped from the averages; the
        // model stays finite and training degrades gracefully instead of
        // diverging.
        const double norm = grad.L2Norm();
        const bool finite =
            std::isfinite(sample_loss) && std::isfinite(norm);
        if (finite) {
          block.push_back(std::move(grad));
          result.mean_loss += sample_loss;
          ++finite_samples;
        } else {
          ++result.nonfinite_skipped;
        }
        if (record_sample_norms)
          result.sample_grad_norms.push_back(norm);  // geodp: per-sample
        result.sample_losses.push_back(sample_loss);
      }
    }
    const TraceSpan span("step.clip_accumulate");
    AccumulateClipped(block, clipper, result.averaged_clipped);
    AccumulateSum(block, result.averaged_raw);
    block.clear();
  }
  ZeroGradients(params);

  const float inv_b = 1.0f / static_cast<float>(result.batch_size);
  result.averaged_clipped.ScaleInPlace(inv_b);
  result.averaged_raw.ScaleInPlace(inv_b);
  result.mean_loss = finite_samples > 0
                         ? result.mean_loss /
                               static_cast<double>(finite_samples)
                         : 0.0;
  return result;
}

double EvaluateMeanLoss(Sequential& model, const InMemoryDataset& dataset,
                        int64_t max_examples, int64_t batch_size) {
  GEODP_CHECK_GT(dataset.size(), 0);
  GEODP_CHECK_GT(batch_size, 0);
  const int64_t limit = (max_examples > 0)
                            ? std::min(max_examples, dataset.size())
                            : dataset.size();
  SoftmaxCrossEntropy loss;
  double total = 0.0;
  int64_t done = 0;
  while (done < limit) {
    const int64_t count = std::min(batch_size, limit - done);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = done + i;
    const Tensor x = dataset.StackImages(indices);
    const std::vector<int64_t> y = dataset.GatherLabels(indices);
    total += loss.Forward(model.Forward(x), y) * static_cast<double>(count);
    done += count;
  }
  return total / static_cast<double>(limit);
}

double EvaluateAccuracy(Sequential& model, const InMemoryDataset& dataset,
                        int64_t batch_size) {
  GEODP_CHECK_GT(dataset.size(), 0);
  GEODP_CHECK_GT(batch_size, 0);
  double correct_weighted = 0.0;
  int64_t done = 0;
  while (done < dataset.size()) {
    const int64_t count = std::min(batch_size, dataset.size() - done);
    std::vector<int64_t> indices(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) indices[static_cast<size_t>(i)] = done + i;
    const Tensor logits = model.Forward(dataset.StackImages(indices));
    const std::vector<int64_t> y = dataset.GatherLabels(indices);
    correct_weighted +=
        AccuracyFromLogits(logits, y) * static_cast<double>(count);
    done += count;
  }
  return correct_weighted / static_cast<double>(dataset.size());
}

}  // namespace geodp
