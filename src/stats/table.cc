#include "stats/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/check.h"

namespace geodp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GEODP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GEODP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TablePrinter::FmtSci(double value, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << value;
  return out.str();
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  auto print_rule = [&]() {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace geodp
