// End-to-end private training loop: per-sample clipping, perturbation
// (none / DP / GeoDP), optional importance sampling, selective update,
// Adam post-processing, RDP privacy accounting, and crash-safe
// checkpointing with bit-identical resume (docs/fault_tolerance.md).

#ifndef GEODP_OPTIM_TRAINER_H_
#define GEODP_OPTIM_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/perturbation.h"
#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "dp/rdp_accountant.h"
#include "nn/sequential.h"
#include "obs/step_observer.h"
#include "optim/dp_adam.h"
#include "optim/geodp_sgd.h"

namespace geodp {

class TrainingStatusPublisher;  // obs/exposition.h

/// Everything a training run needs.
struct TrainerOptions {
  PerturbationMethod method = PerturbationMethod::kDp;
  int64_t batch_size = 64;
  int64_t iterations = 200;
  double learning_rate = 0.5;
  double clip_threshold = 0.1;  // paper fixes C = 0.1
  double noise_multiplier = 1.0;
  double beta = 0.1;                       // GeoDP bounding factor
  // Extension: adapt beta to the observed direction concentration
  // (optim/adaptive_beta.h). Heuristic — see the privacy caveat there.
  bool adaptive_beta = false;
  double adaptive_beta_floor = 1e-4;
  AngleHandling angle_handling = AngleHandling::kNone;
  std::string clipper = "flat";            // "flat" | "AUTO-S" | "PSAC"
  // How per-sample clipping is computed. "materialize" runs each example
  // individually and clips its flattened gradient (optim/dp_sgd.h);
  // "ghost" derives every sample's gradient norm from layer activations
  // and backprops without materializing per-sample gradients
  // (optim/ghost_grad.h) — O(batch + params) staging memory instead of
  // O(batch * params), numerically equivalent up to per-tier
  // floating-point tolerance. "ghost" requires every model layer to
  // support the ghost protocol (Linear/Conv2d plus parameter-free
  // layers); Run() fails with InvalidArgument otherwise.
  std::string clip_mode = "materialize";   // "materialize" | "ghost"
  // Poisson subsampling (each example included independently with rate
  // B/N) — the sampling model the RDP accountant assumes. When false, the
  // trainer uses epoch-shuffled fixed-size batches (common practice; the
  // accountant is then an approximation, as in mainstream DP-SGD
  // frameworks). With Poisson sampling the gradient sum is divided by the
  // nominal batch size B, matching Abadi et al.'s lot semantics.
  bool poisson_sampling = false;
  bool importance_sampling = false;        // IS
  bool selective_update = false;           // SUR
  double sur_tolerance = 0.03;  // accept if after <= before + tolerance
  int64_t sur_eval_examples = 256;         // validation slice for SUR
  bool use_adam = false;                   // DP-Adam post-processing
  double delta = 1e-5;                     // accounting target delta
  uint64_t seed = 1;
  int64_t record_loss_every = 10;          // 0 = never
  // Per-step telemetry sink (obs/step_observer.h). Borrowed, may be null;
  // when null the trainer skips every telemetry computation (per-sample
  // norm recording, accountant snapshots, metrics counters) so the hot
  // path pays nothing.
  StepObserver* step_observer = nullptr;
  // Live introspection channel (obs/exposition.h). Borrowed, may be null.
  // When set, the trainer publishes an immutable status snapshot once per
  // step (plus one at start and one at completion) for the HTTP server to
  // serve. Publishing never alters the training trajectory: the run's
  // JSONL bytes and final weights are bit-identical with or without it.
  TrainingStatusPublisher* status_publisher = nullptr;
  // Target epsilon budget reported to the introspection snapshot so
  // /healthz can flip once epsilon-so-far exceeds it. Reporting only —
  // the trainer never stops on it (0 = unbounded). Deliberately excluded
  // from the options fingerprint: it does not shape the trajectory.
  double epsilon_budget = 0.0;

  // -- Crash safety (ckpt/checkpoint.h) --------------------------------
  // Write a full-state checkpoint every this many attempts (0 = never; the
  // training loop then does no checkpoint work at all).
  int64_t checkpoint_every = 0;
  // Directory for checkpoint files; required when checkpoint_every > 0.
  std::string checkpoint_dir;
  // Checkpoint files retained after each write (older ones are pruned).
  // Keeping >= 2 means a corrupt newest file still leaves a fallback.
  int64_t checkpoint_keep = 2;
  // When non-empty, resume from the newest valid checkpoint in this
  // directory before training. The remaining steps replay bit-identically:
  // same batches, same noise, same telemetry bytes, same epsilon as an
  // uninterrupted run. Options must match the checkpointed run
  // (`iterations` may differ, so training can be extended).
  std::string resume_from;

  // -- Resilience (docs/fault_tolerance.md) ----------------------------
  // Epsilon spent on completed steps is unrecoverable, so aborting a run
  // over a transient I/O failure wastes privacy budget. These knobs keep
  // a run alive through bounded trouble; none of them shapes the
  // trajectory, so all are excluded from the options fingerprint.
  //
  // Consecutive checkpoint-write failures tolerated before giving up.
  // Each failure (after the write's own retries) is skipped with a
  // warning and counted in the ckpt.missed counter; a later successful
  // checkpoint clears the debt. Exceeding the bound is the only fatal
  // checkpoint path. 0 (default) keeps the historical strict behavior:
  // the first exhausted write aborts the run.
  int64_t max_missed_checkpoints = 0;
  // Stall watchdog: when > 0, a background thread flags the run once no
  // training step completes for this many milliseconds (process time).
  // The loop then cancels cooperatively at the next attempt boundary —
  // flushing a final checkpoint so the spent epsilon stays resumable —
  // and Run() returns kCancelled. 0 (default) disables the watchdog.
  int64_t stall_timeout_ms = 0;
};

/// Everything a training run reports.
struct TrainingResult {
  std::vector<int64_t> loss_iterations;  // iteration index per loss sample
  std::vector<double> loss_history;      // batch mean loss before update
  double final_train_loss = 0.0;
  double test_accuracy = -1.0;  // -1 when no test set was provided
  double epsilon = 0.0;         // RDP-accounted epsilon at options.delta
  int64_t sur_accepted = 0;
  int64_t sur_rejected = 0;
  double final_beta = 0.0;      // last beta used (varies with adaptive_beta)
  // Poisson lots that drew no examples (pure-noise steps). Their loss is
  // undefined, so they are excluded from loss_history and from the
  // adaptive-beta direction envelope.
  int64_t empty_lots = 0;
  // Per-sample gradients/losses dropped for being NaN/Inf (optim/dp_sgd.h).
  // The model parameters stay finite regardless of this count.
  int64_t nonfinite_skipped = 0;
  // Audit trail of every privacy release the run made (restored releases
  // included when resuming, so the composed guarantee covers the whole
  // training history, not just the final segment).
  PrivacyLedger ledger;
};

/// Validates a configuration against a dataset of `train_size` examples.
/// Returns a descriptive error for out-of-range values instead of letting
/// the training loop abort on them.
Status ValidateTrainerOptions(const TrainerOptions& options,
                              int64_t train_size);

/// Trains a model privately on a dataset. The model is mutated in place.
class DpTrainer {
 public:
  /// `test` may be null (accuracy is then not evaluated).
  DpTrainer(Sequential* model, const InMemoryDataset* train,
            const InMemoryDataset* test, TrainerOptions options);

  /// Runs the full loop and returns the report. Fails with a descriptive
  /// Status on invalid options, unusable checkpoint configuration, or a
  /// resume directory whose checkpoints do not match this run.
  StatusOr<TrainingResult> Run();

  /// Legacy wrapper around Run() that aborts on error.
  TrainingResult Train();

  const TrainerOptions& options() const { return options_; }

 private:
  Sequential* model_;
  const InMemoryDataset* train_;
  const InMemoryDataset* test_;
  TrainerOptions options_;
};

}  // namespace geodp

#endif  // GEODP_OPTIM_TRAINER_H_
