// Budget-first calibration: given a target (epsilon, delta) for a whole
// training run (T subsampled-Gaussian steps at sampling rate q), find the
// smallest noise multiplier sigma that satisfies it, using the RDP
// accountant. This is how practitioners actually configure DP-SGD / GeoDP:
// pick the budget, derive sigma.
//
// Both entry points take values that typically arrive straight from user
// configuration (CLI flags, experiment configs), so they validate their
// inputs and report problems as Status instead of aborting.

#ifndef GEODP_DP_CALIBRATION_H_
#define GEODP_DP_CALIBRATION_H_

#include <cstdint>

#include "base/status.h"
#include "base/units.h"

namespace geodp {

/// Epsilon (at `delta`) of `steps` subsampled-Gaussian releases with noise
/// multiplier sigma and sampling rate q, via the RDP accountant. Every
/// double parameter is strongly typed (base/units.h) so no two of them
/// can be transposed. Returns InvalidArgument if sigma <= 0, q outside
/// (0, 1], steps < 0, or delta outside (0, 1).
StatusOr<double> TrainingRunEpsilon(NoiseMultiplier sigma,
                                    SamplingRate sampling_rate,
                                    int64_t steps, Delta delta);

/// Smallest sigma whose TrainingRunEpsilon is <= target_epsilon, found by
/// bisection (epsilon is monotone decreasing in sigma). `precision` is the
/// relative width of the final bracket. Returns InvalidArgument on bad
/// inputs and OutOfRange if the target is unreachable at this q/steps/delta.
StatusOr<double> NoiseMultiplierForTargetEpsilon(Epsilon target_epsilon,
                                                 Delta delta,
                                                 SamplingRate sampling_rate,
                                                 int64_t steps,
                                                 double precision = 1e-4);

}  // namespace geodp

#endif  // GEODP_DP_CALIBRATION_H_
