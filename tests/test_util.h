// Shared helpers for the unit tests: finite-difference gradient checking
// against the analytic backward passes.

#ifndef GEODP_TESTS_TEST_UTIL_H_
#define GEODP_TESTS_TEST_UTIL_H_

#include <cmath>

#include "base/rng.h"
#include "nn/module.h"
#include "nn/parameter.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace testing_util {

// Scalar objective used by the checks: f(x) = sum_i c_i * layer(x)_i with
// fixed random coefficients c, whose analytic gradient seed is simply c.
struct GradCheckResult {
  double max_input_error = 0.0;
  double max_param_error = 0.0;
};

inline double EvalObjective(Layer& layer, const Tensor& input,
                            const Tensor& coefficients) {
  const Tensor out = layer.Forward(input);
  return Dot(out, coefficients);
}

// Compares the layer's analytic input/parameter gradients against central
// finite differences. `epsilon` is the probe step.
inline GradCheckResult CheckGradients(Layer& layer, const Tensor& input,
                                      Rng& rng, double epsilon = 1e-3) {
  // Forward once to learn the output shape, then fix coefficients.
  Tensor probe_out = layer.Forward(input);
  Tensor coefficients = Tensor::Randn(probe_out.shape(), rng);

  // Analytic pass.
  const std::vector<Parameter*> params = layer.Parameters();
  ZeroGradients(params);
  layer.Forward(input);
  const Tensor analytic_input_grad = layer.Backward(coefficients);
  const Tensor analytic_param_grad = FlattenGradients(params);

  GradCheckResult result;

  // Numeric input gradient.
  Tensor x = input;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(epsilon);
    const double up = EvalObjective(layer, x, coefficients);
    x[i] = saved - static_cast<float>(epsilon);
    const double down = EvalObjective(layer, x, coefficients);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    result.max_input_error = std::max(
        result.max_input_error,
        std::fabs(numeric - static_cast<double>(analytic_input_grad[i])));
  }

  // Numeric parameter gradient.
  int64_t flat_offset = 0;
  for (Parameter* p : params) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(epsilon);
      const double up = EvalObjective(layer, input, coefficients);
      p->value[i] = saved - static_cast<float>(epsilon);
      const double down = EvalObjective(layer, input, coefficients);
      p->value[i] = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      result.max_param_error =
          std::max(result.max_param_error,
                   std::fabs(numeric -
                             static_cast<double>(
                                 analytic_param_grad[flat_offset + i])));
    }
    flat_offset += p->value.numel();
  }
  return result;
}

}  // namespace testing_util
}  // namespace geodp

#endif  // GEODP_TESTS_TEST_UTIL_H_
