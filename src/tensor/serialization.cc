#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace geodp {
namespace {

constexpr char kMagic[4] = {'G', 'D', 'P', 'T'};
constexpr uint32_t kVersion = 1;
// Refuses absurd inputs so a corrupt header cannot trigger huge allocations.
constexpr uint32_t kMaxDims = 16;
constexpr int64_t kMaxElements = int64_t{1} << 34;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status WriteTensor(const Tensor& tensor, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  const uint32_t ndim = static_cast<uint32_t>(tensor.ndim());
  WritePod(out, ndim);
  for (int i = 0; i < tensor.ndim(); ++i) {
    WritePod(out, static_cast<int64_t>(tensor.dim(i)));
  }
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<Tensor> ReadTensor(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad tensor magic");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported tensor version");
  }
  uint32_t ndim = 0;
  if (!ReadPod(in, &ndim) || ndim > kMaxDims) {
    return Status::InvalidArgument("bad tensor rank");
  }
  std::vector<int64_t> shape(ndim);
  int64_t numel = 1;
  for (uint32_t i = 0; i < ndim; ++i) {
    if (!ReadPod(in, &shape[i]) || shape[i] <= 0) {
      return Status::InvalidArgument("bad tensor extent");
    }
    numel *= shape[i];
    if (numel > kMaxElements) {
      return Status::InvalidArgument("tensor too large");
    }
  }
  std::vector<float> data(static_cast<size_t>(numel));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in.good() && !(in.eof() && in.gcount() ==
                          static_cast<std::streamsize>(data.size() *
                                                       sizeof(float)))) {
    return Status::InvalidArgument("truncated tensor data");
  }
  return Tensor::FromVector(std::move(shape), std::move(data));
}

Status SaveTensorToFile(const Tensor& tensor, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  return WriteTensor(tensor, out);
}

StatusOr<Tensor> LoadTensorFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  return ReadTensor(in);
}

}  // namespace geodp
