// Batch index samplers: epoch-shuffled fixed-size batches and Poisson
// subsampling (the sampling model assumed by the RDP accountant).

#ifndef GEODP_DATA_DATALOADER_H_
#define GEODP_DATA_DATALOADER_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace geodp {

/// Cycles through a shuffled permutation of [0, dataset_size), reshuffling
/// at each epoch boundary; batches have exactly `batch_size` indices and
/// never contain duplicates (an epoch tail shorter than batch_size is
/// dropped and rejoins the next shuffle — reshuffling mid-batch could draw
/// an example twice, violating the sensitivity-C bound of DP-SGD).
class BatchSampler {
 public:
  BatchSampler(int64_t dataset_size, int64_t batch_size, uint64_t seed,
               bool shuffle = true);

  /// Next batch of indices; reshuffles at batch boundaries across epochs.
  std::vector<int64_t> NextBatch();

  int64_t batch_size() const { return batch_size_; }

 private:
  void StartEpoch();

  int64_t dataset_size_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

/// Poisson subsampling: each example is included independently with
/// probability sampling_rate. Batches have random size (possibly zero).
class PoissonSampler {
 public:
  PoissonSampler(int64_t dataset_size, double sampling_rate, uint64_t seed);

  std::vector<int64_t> NextBatch();

  double sampling_rate() const { return sampling_rate_; }

 private:
  int64_t dataset_size_;
  double sampling_rate_;
  Rng rng_;
};

}  // namespace geodp

#endif  // GEODP_DATA_DATALOADER_H_
