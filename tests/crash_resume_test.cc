// The headline crash-safety guarantee: kill training at any step, resume
// from the checkpoint directory, and the remaining steps are BIT-IDENTICAL
// to an uninterrupted run — same telemetry bytes, same final weights, same
// accounted epsilon. Verified at several kill points, at 1 and 8 threads,
// and across the SUR / Adam / adaptive-beta / Poisson / IS code paths.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "base/byte_view.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/parameter.h"
#include "obs/step_observer.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

InMemoryDataset MakeTrainSet(int64_t n, uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = n;
  options.height = 8;
  options.width = 8;
  options.pixel_noise = 0.15;
  options.max_shift = 1;
  options.label_noise = 0.0;
  options.seed = seed;
  return MakeSyntheticImages(options);
}

std::unique_ptr<Sequential> MakeModel(uint64_t seed) {
  Rng rng(seed);
  return MakeLogisticRegression(64, 10, rng);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Raw IEEE-754 bytes of the flattened model weights — equality here is
// bit-identity, not approximate closeness.
std::string WeightBytes(Sequential& model) {
  const Tensor flat = FlattenValues(model.Parameters());
  const geodp::ByteSpan bytes =
      geodp::AsBytes(flat.data(), static_cast<size_t>(flat.numel()));
  return std::string(bytes.data, bytes.size);
}

struct SegmentOutput {
  std::vector<std::string> records;  // serialized telemetry, one per attempt
  std::string weights;
  TrainingResult result;
  Status status;
  bool ok = false;
};

SegmentOutput RunSegment(const InMemoryDataset& train,
                         TrainerOptions options, uint64_t model_seed) {
  auto model = MakeModel(model_seed);
  CollectingStepObserver observer;
  options.step_observer = &observer;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  SegmentOutput out;
  StatusOr<TrainingResult> run = trainer.Run();
  out.ok = run.ok();
  out.status = run.ok() ? Status::Ok() : run.status();
  if (!run.ok()) return out;
  out.result = std::move(run).value();
  out.weights = WeightBytes(*model);
  for (const StepRecord& record : observer.records()) {
    out.records.push_back(StepRecordToJson(record));
  }
  return out;
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 16;
  options.iterations = 30;
  options.learning_rate = 0.5;
  options.noise_multiplier = 1.0;
  options.seed = 101;
  options.record_loss_every = 1;
  return options;
}

// Runs the full kill-at-k / resume / compare cycle for one configuration.
void CheckBitIdenticalResume(const TrainerOptions& base,
                             const std::string& dir_name,
                             std::initializer_list<int64_t> kill_points) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const uint64_t model_seed = 7;

  const SegmentOutput reference = RunSegment(train, base, model_seed);
  ASSERT_TRUE(reference.ok) << reference.status.ToString();

  for (const int64_t k : kill_points) {
    SCOPED_TRACE("kill at iteration " + std::to_string(k));
    const std::string dir =
        FreshDir(dir_name + "_k" + std::to_string(k));

    // Part 1 simulates the killed run: it checkpoints after every attempt
    // and stops after k accepted updates. The first k steps of a run do
    // not depend on when it will stop, so stopping early stands in for a
    // mid-run kill (the CLI-level CI job performs a real _Exit kill).
    TrainerOptions part1 = base;
    part1.iterations = k;
    part1.checkpoint_every = 1;
    part1.checkpoint_dir = dir;
    const SegmentOutput killed = RunSegment(train, part1, model_seed);
    ASSERT_TRUE(killed.ok) << killed.status.ToString();

    // Part 2 resumes on a FRESH model (all state must come from the
    // checkpoint) with the original iteration budget.
    TrainerOptions part2 = base;
    part2.checkpoint_every = 1;
    part2.checkpoint_dir = dir;
    part2.resume_from = dir;
    const SegmentOutput resumed =
        RunSegment(train, part2, /*model_seed=*/999);
    ASSERT_TRUE(resumed.ok) << resumed.status.ToString();

    // Telemetry: the resumed records must equal the reference tail,
    // byte for byte.
    const size_t done = killed.records.size();
    ASSERT_EQ(resumed.records.size(), reference.records.size() - done);
    for (size_t i = 0; i < resumed.records.size(); ++i) {
      EXPECT_EQ(resumed.records[i], reference.records[done + i])
          << "record " << i << " after resume differs";
    }
    // Weights: bit-identical, not just close.
    EXPECT_EQ(resumed.weights, reference.weights);
    // Privacy: exactly the same spend, no double counting across segments.
    EXPECT_EQ(resumed.result.epsilon, reference.result.epsilon);
    EXPECT_EQ(resumed.result.ledger.TotalReleases(),
              reference.result.ledger.TotalReleases());
    // Loss record and counters continue seamlessly.
    EXPECT_EQ(resumed.result.loss_history, reference.result.loss_history);
    EXPECT_EQ(resumed.result.loss_iterations,
              reference.result.loss_iterations);
    EXPECT_EQ(resumed.result.empty_lots, reference.result.empty_lots);
    EXPECT_EQ(resumed.result.sur_accepted, reference.result.sur_accepted);
    EXPECT_EQ(resumed.result.sur_rejected, reference.result.sur_rejected);
  }
}

TEST(CrashResumeTest, DpFixedBatchBitIdentical) {
  CheckBitIdenticalResume(BaseOptions(), "resume_dp", {1, 11, 29});
}

TEST(CrashResumeTest, DpFixedBatchBitIdenticalAt8Threads) {
  SetGlobalThreadCount(8);
  CheckBitIdenticalResume(BaseOptions(), "resume_dp8", {1, 11, 29});
  SetGlobalThreadCount(1);
}

TEST(CrashResumeTest, GeoDpAdaptiveBetaPoissonBitIdentical) {
  TrainerOptions options = BaseOptions();
  options.method = PerturbationMethod::kGeoDp;
  options.beta = 0.05;
  options.adaptive_beta = true;
  options.poisson_sampling = true;
  CheckBitIdenticalResume(options, "resume_geodp", {5, 17});
}

TEST(CrashResumeTest, SelectiveUpdateBitIdentical) {
  TrainerOptions options = BaseOptions();
  options.selective_update = true;
  options.noise_multiplier = 2.0;
  options.learning_rate = 2.0;
  options.iterations = 20;
  CheckBitIdenticalResume(options, "resume_sur", {3, 13});
}

TEST(CrashResumeTest, AdamImportanceSamplingBitIdentical) {
  TrainerOptions options = BaseOptions();
  options.use_adam = true;
  options.importance_sampling = true;
  options.learning_rate = 0.05;
  CheckBitIdenticalResume(options, "resume_adam_is", {2, 19});
}

TEST(CrashResumeTest, ResumeExtendsTraining) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const std::string dir = FreshDir("resume_extend");

  TrainerOptions part1 = BaseOptions();
  part1.iterations = 10;
  part1.checkpoint_every = 1;
  part1.checkpoint_dir = dir;
  const SegmentOutput first = RunSegment(train, part1, 7);
  ASSERT_TRUE(first.ok);

  // `iterations` is excluded from the fingerprint: resuming with a larger
  // budget continues training past the original horizon.
  TrainerOptions part2 = BaseOptions();
  part2.iterations = 25;
  part2.resume_from = dir;
  const SegmentOutput extended = RunSegment(train, part2, 999);
  ASSERT_TRUE(extended.ok) << extended.status.ToString();
  EXPECT_EQ(extended.records.size(), 15u);
  EXPECT_GT(extended.result.epsilon, first.result.epsilon);
}

TEST(CrashResumeTest, GhostClipModeBitIdentical) {
  TrainerOptions options = BaseOptions();
  options.clip_mode = "ghost";
  CheckBitIdenticalResume(options, "resume_ghost", {1, 11, 29});
}

TEST(CrashResumeTest, GhostClipModePoissonBitIdentical) {
  TrainerOptions options = BaseOptions();
  options.clip_mode = "ghost";
  options.poisson_sampling = true;
  CheckBitIdenticalResume(options, "resume_ghost_poisson", {5, 17});
}

TEST(CrashResumeTest, ResumeRefusesCrossClipMode) {
  // The options fingerprint embeds clip_mode, so a ghost run can never
  // silently continue a materialize checkpoint (or vice versa) — the two
  // paths are equivalent only up to floating-point tolerance, not bit
  // layout.
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const std::string dir = FreshDir("resume_cross_mode");

  TrainerOptions part1 = BaseOptions();
  part1.iterations = 5;
  part1.checkpoint_every = 1;
  part1.checkpoint_dir = dir;
  ASSERT_TRUE(RunSegment(train, part1, 7).ok);

  TrainerOptions part2 = BaseOptions();
  part2.clip_mode = "ghost";
  part2.resume_from = dir;
  const SegmentOutput resumed = RunSegment(train, part2, 7);
  EXPECT_FALSE(resumed.ok);
  EXPECT_EQ(resumed.status.code(), StatusCode::kFailedPrecondition);
}

TEST(CrashResumeTest, ResumeRefusesMismatchedOptions) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const std::string dir = FreshDir("resume_mismatch");

  TrainerOptions part1 = BaseOptions();
  part1.iterations = 5;
  part1.checkpoint_every = 1;
  part1.checkpoint_dir = dir;
  ASSERT_TRUE(RunSegment(train, part1, 7).ok);

  TrainerOptions part2 = BaseOptions();
  part2.noise_multiplier = 2.0;  // different privacy parameters
  part2.resume_from = dir;
  const SegmentOutput resumed = RunSegment(train, part2, 7);
  EXPECT_FALSE(resumed.ok);
  EXPECT_EQ(resumed.status.code(), StatusCode::kFailedPrecondition);
}

TEST(CrashResumeTest, ResumeFromEmptyDirectoryFails) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  TrainerOptions options = BaseOptions();
  options.resume_from = FreshDir("resume_nothing");
  const SegmentOutput resumed = RunSegment(train, options, 7);
  EXPECT_FALSE(resumed.ok);
  EXPECT_EQ(resumed.status.code(), StatusCode::kNotFound);
}

TEST(CrashResumeTest, CheckpointKeepBoundsFileCount) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const std::string dir = FreshDir("resume_keep");
  TrainerOptions options = BaseOptions();
  options.iterations = 12;
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir;
  options.checkpoint_keep = 3;
  ASSERT_TRUE(RunSegment(train, options, 7).ok);

  // Postmortem dumps piggyback on checkpoints but live outside the
  // ckpt_* prune pattern; keep bounds checkpoints, not postmortems.
  int64_t checkpoints = 0;
  int64_t postmortems = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    checkpoints += name.rfind("ckpt_", 0) == 0 ? 1 : 0;
    postmortems += name.rfind("postmortem-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(checkpoints, 3);
  EXPECT_GE(postmortems, 1);
}

TEST(CrashResumeTest, NoCheckpointFilesWhenDisabled) {
  const InMemoryDataset train = MakeTrainSet(80, 50);
  const std::string dir = FreshDir("resume_disabled");
  TrainerOptions options = BaseOptions();
  options.iterations = 5;
  options.checkpoint_every = 0;  // off: the loop must write nothing
  options.checkpoint_dir = dir;
  ASSERT_TRUE(RunSegment(train, options, 7).ok);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

}  // namespace
}  // namespace geodp
