// Ghost-clipped private gradient computation: the O(batch + params)
// alternative to ComputePerSampleGradients. One batched forward, one
// batched backward that has each parameterized layer derive every
// sample's squared gradient norm from its cached activations and the
// incoming backprop (Goodfellow's trick for Linear, the im2col analog
// for Conv2d), then two weighted accumulation passes — clipped and raw —
// that never materialize a per-sample gradient. Produces the same
// PrivateBatchGradient contract as the materialized path (equal clipped
// and raw averages up to per-tier floating-point tolerance).

#ifndef GEODP_OPTIM_GHOST_GRAD_H_
#define GEODP_OPTIM_GHOST_GRAD_H_

#include <cstdint>
#include <vector>

#include "clip/clipping.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "optim/dp_sgd.h"

namespace geodp {

/// True when every layer of the model implements the ghost-clipping
/// protocol (SupportsGhostClip). Parameter-free layers always qualify;
/// a model with any parameterized layer lacking ghost hooks must fall
/// back to the materialized path.
bool GhostClipSupported(Sequential& model);

/// Ghost-clipped drop-in for ComputePerSampleGradients: same inputs,
/// same PrivateBatchGradient semantics (averages divided by the full
/// batch size, non-finite samples contributing exactly zero,
/// sample_losses batch-aligned with raw values), but computed without
/// ever materializing a per-sample gradient. Requires
/// GhostClipSupported(model). Leaves the accumulated parameter
/// gradients zeroed.
PrivateBatchGradient ComputeGhostClippedGradients(
    Sequential& model, SoftmaxCrossEntropy& loss,
    const InMemoryDataset& dataset, const std::vector<int64_t>& indices,
    const Clipper& clipper, bool record_sample_norms = false);

}  // namespace geodp

#endif  // GEODP_OPTIM_GHOST_GRAD_H_
