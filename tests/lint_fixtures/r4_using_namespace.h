// Fixture: seeded R4 violation — using namespace at header scope.
#pragma once

#include <string>

using namespace std;

namespace geodp {

inline string HandyName() { return "handy"; }

}  // namespace geodp
