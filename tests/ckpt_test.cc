// Unit tests for the crash-safety subsystem: CRC32, bounds-checked byte
// I/O, the GDPK checkpoint format, latest-good fallback, pruning, and
// fault injection.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/crc32.h"
#include "base/fault_injection.h"
#include "ckpt/byte_io.h"
#include "ckpt/checkpoint.h"
#include "gtest/gtest.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32Test, KnownVectors) {
  // Standard zlib/IEEE CRC-32 test vectors.
  EXPECT_EQ(Crc32("", 0), 0u);
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  const std::string hello = "hello world";
  EXPECT_EQ(Crc32(hello.data(), hello.size()), 0x0D4A1185u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(Crc32Finish(crc), Crc32(data.data(), data.size()));
}

TEST(ByteIoTest, RoundTripsAllTypes) {
  ByteWriter w;
  w.WriteU8(200);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(uint64_t{1} << 60);
  w.WriteI64(-12345678901234);
  w.WriteDouble(3.141592653589793);
  w.WriteBool(true);
  w.WriteString("checkpoint");
  w.WriteI64Vector({1, -2, 3});
  w.WriteDoubleVector({0.5, -0.25});
  w.WriteTensor(Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f}));
  w.WriteTensor(Tensor());  // default tensor round-trips too

  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8(), 200);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), uint64_t{1} << 60);
  EXPECT_EQ(r.ReadI64(), -12345678901234);
  EXPECT_EQ(r.ReadDouble(), 3.141592653589793);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadString(), "checkpoint");
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{0.5, -0.25}));
  const Tensor t = r.ReadTensor();
  ASSERT_EQ(t.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(t[3], 4.0f);
  EXPECT_EQ(r.ReadTensor().numel(), 0);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, TruncatedBufferFailsInsteadOfCrashing) {
  ByteWriter w;
  w.WriteString("some content here");
  const std::string bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader r(bytes.data(), cut);
    (void)r.ReadString();
    EXPECT_TRUE(r.failed()) << "cut at " << cut;
  }
}

TEST(ByteIoTest, HugeClaimedVectorLengthFails) {
  ByteWriter w;
  w.WriteU64(uint64_t{1} << 60);  // claims 2^60 elements
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadI64Vector().empty());
  EXPECT_TRUE(r.failed());
}

TrainingCheckpoint MakeCheckpoint(int64_t attempt) {
  TrainingCheckpoint c;
  c.next_attempt = attempt;
  c.accepted_updates = attempt;
  c.loss_iterations = {0, 10};
  c.loss_history = {2.31, 1.87};
  c.empty_lots = 1;
  c.nonfinite_skipped = 2;
  c.sur_accepted = 5;
  c.sur_rejected = 3;
  c.current_beta = 0.05;
  c.param_names = {"fc.weight", "fc.bias"};
  c.param_values = {Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}),
                    Tensor::FromVector({3}, {7, 8, 9})};
  c.noise_rng.state[0] = 0x1234;
  c.noise_rng.has_cached_gaussian = true;
  c.noise_rng.cached_gaussian = -0.75;
  c.uniform_sampler.order = {3, 1, 0, 2};
  c.uniform_sampler.cursor = 2;
  c.importance_sampler.weights = {1.0, 2.0, 3.0, 4.0};
  c.importance_sampler.seen = {true, false, true, false};
  c.adam.m = Tensor::FromVector({9}, std::vector<float>(9, 0.5f));
  c.adam.v = Tensor::FromVector({9}, std::vector<float>(9, 0.25f));
  c.adam.step = attempt;
  c.accountant_orders = {2, 3, 4};
  c.accountant_rdp = {0.1, 0.2, 0.3};
  c.accountant_steps = attempt;
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kSubsampledGaussian;
  event.noise_multiplier = 1.0;
  event.sampling_rate = 0.1;
  event.count = attempt;
  event.note = "dp-sgd step";
  c.ledger_events = {event};
  c.beta_controller.observations = 4;
  c.beta_controller.min_angle = {0.1, 0.2};
  c.beta_controller.max_angle = {1.1, 1.2};
  c.options_fingerprint = "v1|test";
  return c;
}

TEST(CheckpointTest, SaveLoadRoundTripIsExact) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  const TrainingCheckpoint original = MakeCheckpoint(17);
  const std::string path = dir + "/" + CheckpointFileName(17);
  ASSERT_TRUE(SaveTrainingCheckpoint(original, path).ok());

  StatusOr<TrainingCheckpoint> loaded = LoadTrainingCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TrainingCheckpoint& c = loaded.value();
  EXPECT_EQ(c.next_attempt, 17);
  EXPECT_EQ(c.accepted_updates, 17);
  EXPECT_EQ(c.loss_iterations, original.loss_iterations);
  EXPECT_EQ(c.loss_history, original.loss_history);
  EXPECT_EQ(c.empty_lots, 1);
  EXPECT_EQ(c.nonfinite_skipped, 2);
  EXPECT_EQ(c.sur_accepted, 5);
  EXPECT_EQ(c.sur_rejected, 3);
  EXPECT_EQ(c.current_beta, 0.05);
  EXPECT_EQ(c.param_names, original.param_names);
  ASSERT_EQ(c.param_values.size(), 2u);
  EXPECT_EQ(c.param_values[0].shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(c.param_values[1][2], 9.0f);
  EXPECT_EQ(c.noise_rng.state[0], 0x1234u);
  EXPECT_TRUE(c.noise_rng.has_cached_gaussian);
  EXPECT_EQ(c.noise_rng.cached_gaussian, -0.75);
  EXPECT_EQ(c.uniform_sampler.order, original.uniform_sampler.order);
  EXPECT_EQ(c.uniform_sampler.cursor, 2);
  EXPECT_EQ(c.importance_sampler.weights,
            original.importance_sampler.weights);
  EXPECT_EQ(c.importance_sampler.seen, original.importance_sampler.seen);
  EXPECT_EQ(c.adam.step, 17);
  EXPECT_EQ(c.adam.m.numel(), 9);
  EXPECT_EQ(c.accountant_orders, original.accountant_orders);
  EXPECT_EQ(c.accountant_rdp, original.accountant_rdp);
  EXPECT_EQ(c.accountant_steps, 17);
  ASSERT_EQ(c.ledger_events.size(), 1u);
  EXPECT_EQ(c.ledger_events[0].note, "dp-sgd step");
  EXPECT_EQ(c.ledger_events[0].count, 17);
  EXPECT_EQ(c.beta_controller.observations, 4);
  EXPECT_EQ(c.beta_controller.max_angle, original.beta_controller.max_angle);
  EXPECT_EQ(c.options_fingerprint, "v1|test");
}

TEST(CheckpointTest, SaveLeavesNoTempFileBehind) {
  const std::string dir = FreshDir("ckpt_no_tmp");
  const std::string path = dir + "/" + CheckpointFileName(1);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(1), path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, SaveCreatesMissingDirectory) {
  const std::string dir = TempPath("ckpt_fresh_parent");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/nested/" + CheckpointFileName(3);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(3), path).ok());
  EXPECT_TRUE(LoadTrainingCheckpoint(path).ok());
}

TEST(CheckpointTest, EveryByteFlipIsDetected) {
  const std::string dir = FreshDir("ckpt_bitflips");
  const std::string path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(2), path).ok());
  const std::string good = ReadFile(path);
  // Flip one bit at a spread of offsets covering header, payload, and
  // trailer; every corruption must be rejected without crashing.
  for (size_t offset = 0; offset < good.size();
       offset += (offset < 24 ? 1 : 13)) {
    std::string bad = good;
    bad[offset] ^= 0x08;
    WriteFile(path, bad);
    EXPECT_FALSE(LoadTrainingCheckpoint(path).ok())
        << "bit flip at offset " << offset << " not detected";
  }
  WriteFile(path, good);
  EXPECT_TRUE(LoadTrainingCheckpoint(path).ok());
}

TEST(CheckpointTest, EveryTruncationIsDetected) {
  const std::string dir = FreshDir("ckpt_truncate");
  const std::string path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(2), path).ok());
  const std::string good = ReadFile(path);
  for (size_t keep = 0; keep < good.size(); keep += 7) {
    WriteFile(path, good.substr(0, keep));
    EXPECT_FALSE(LoadTrainingCheckpoint(path).ok())
        << "truncation to " << keep << " bytes not detected";
  }
}

TEST(CheckpointTest, FindLatestGoodFallsBackPastCorruptFiles) {
  const std::string dir = FreshDir("ckpt_fallback");
  for (const int64_t attempt : {5, 10, 15}) {
    ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(attempt),
                                       dir + "/" +
                                           CheckpointFileName(attempt))
                    .ok());
  }
  // Corrupt the newest checkpoint: resume must fall back to attempt 10.
  const std::string newest = dir + "/" + CheckpointFileName(15);
  std::string bytes = ReadFile(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(newest, bytes);

  StatusOr<FoundCheckpoint> found = FindLatestGoodCheckpoint(dir);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found.value().checkpoint.next_attempt, 10);
  EXPECT_EQ(found.value().skipped_corrupt, 1);
}

TEST(CheckpointTest, FindLatestGoodReportsEmptyAndAllCorrupt) {
  const std::string dir = FreshDir("ckpt_empty");
  EXPECT_FALSE(FindLatestGoodCheckpoint(dir).ok());

  const std::string path = dir + "/" + CheckpointFileName(1);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(1), path).ok());
  WriteFile(path, "GDPKgarbage");
  EXPECT_FALSE(FindLatestGoodCheckpoint(dir).ok());
}

TEST(CheckpointTest, PruneKeepsNewestFiles) {
  const std::string dir = FreshDir("ckpt_prune");
  for (const int64_t attempt : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(attempt),
                                       dir + "/" +
                                           CheckpointFileName(attempt))
                    .ok());
  }
  PruneOldCheckpoints(dir, 2);
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + CheckpointFileName(3)));
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/" + CheckpointFileName(4)));
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/" + CheckpointFileName(5)));
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectionTest, SpecParsing) {
  EXPECT_TRUE(FaultInjector::ArmFromSpec("").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(FaultInjector::ArmFromSpec("trainer.step@25:crash").ok());
  EXPECT_TRUE(FaultInjector::Global().armed());
  FaultInjector::Global().Disarm();
  EXPECT_FALSE(FaultInjector::ArmFromSpec("nosite").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("a@0:crash").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("a@x:crash").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("a@1:explode").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("@1:crash").ok());
}

TEST_F(FaultInjectionTest, FiresOnlyOnConfiguredHit) {
  FaultInjector& faults = FaultInjector::Global();
  faults.Arm("ckpt.write", 3, FaultInjector::Action::kBitFlip);
  EXPECT_EQ(faults.Fire("other.site"), FaultInjector::Action::kNone);
  EXPECT_EQ(faults.Fire("ckpt.write"), FaultInjector::Action::kNone);
  EXPECT_EQ(faults.Fire("ckpt.write"), FaultInjector::Action::kNone);
  EXPECT_EQ(faults.Fire("ckpt.write"), FaultInjector::Action::kBitFlip);
  // One-shot: disarmed after firing.
  EXPECT_FALSE(faults.armed());
  EXPECT_EQ(faults.Fire("ckpt.write"), FaultInjector::Action::kNone);
}

TEST_F(FaultInjectionTest, ShortWriteProducesRejectedFileWithFallback) {
  const std::string dir = FreshDir("ckpt_shortwrite");
  const std::string good_path = dir + "/" + CheckpointFileName(1);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(1), good_path).ok());

  FaultInjector::Global().Arm("ckpt.write", 1,
                              FaultInjector::Action::kShortWrite);
  const std::string torn_path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(2), torn_path).ok());

  // The torn file exists but never validates; recovery uses the previous
  // good checkpoint.
  EXPECT_TRUE(std::filesystem::exists(torn_path));
  EXPECT_FALSE(LoadTrainingCheckpoint(torn_path).ok());
  StatusOr<FoundCheckpoint> found = FindLatestGoodCheckpoint(dir);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().checkpoint.next_attempt, 1);
  EXPECT_EQ(found.value().skipped_corrupt, 1);
}

TEST_F(FaultInjectionTest, BitFlipProducesRejectedFileWithFallback) {
  const std::string dir = FreshDir("ckpt_bitflip_save");
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(1),
                                     dir + "/" + CheckpointFileName(1))
                  .ok());

  FaultInjector::Global().Arm("ckpt.write", 1,
                              FaultInjector::Action::kBitFlip);
  const std::string flipped_path = dir + "/" + CheckpointFileName(2);
  ASSERT_TRUE(SaveTrainingCheckpoint(MakeCheckpoint(2), flipped_path).ok());

  EXPECT_FALSE(LoadTrainingCheckpoint(flipped_path).ok());
  StatusOr<FoundCheckpoint> found = FindLatestGoodCheckpoint(dir);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().checkpoint.next_attempt, 1);
}

}  // namespace
}  // namespace geodp
