#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (version 0.0.4) scrape.

Used by the CI bench-smoke job on the body curl'd from a live geodp
training run's /metrics endpoint. Checks:
  * every line is a comment (# HELP / # TYPE) or a well-formed sample
    `name[{labels}] value`;
  * every sample's metric family has a # TYPE declared before it;
  * histogram buckets are cumulative (monotone non-decreasing in le
    order), end in an le="+Inf" bucket, and the +Inf count equals the
    family's _count sample; a _sum sample is present;
  * metric names match the Prometheus grammar and sample values parse as
    numbers;
  * `--require NAME` (repeatable) asserts a specific sample exists.

Exits 0 when the scrape passes, 1 with a diagnostic otherwise. Uses only
the standard library.

`--self-check` lints this script itself (pyflakes if available, else a
stdlib AST pass) so the CI static-analysis job covers the Python side too.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def fail(message):
    print(f"check_prom_text: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def self_check():
    """Lints this file. Prefers pyflakes; falls back to compiling the AST
    with a duplicate-name scan so the check still bites where pyflakes is
    not installed."""
    import ast

    source_path = __file__
    try:
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        fail(f"self-check: cannot read {source_path}: {error}")

    try:
        from pyflakes.api import check as pyflakes_check
        from pyflakes.reporter import Reporter

        errors = pyflakes_check(
            source, source_path, Reporter(sys.stderr, sys.stderr)
        )
        if errors:
            fail(f"self-check: pyflakes reported {errors} problem(s)")
        print("check_prom_text: OK: self-check passed (pyflakes)")
        return
    except ImportError:
        pass

    try:
        tree = ast.parse(source, filename=source_path)
        compile(tree, source_path, "exec")
    except SyntaxError as error:
        fail(f"self-check: syntax error: {error}")
    top_level = [
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    duplicates = {name for name in top_level if top_level.count(name) > 1}
    if duplicates:
        fail(f"self-check: duplicate top-level definitions: {duplicates}")
    print("check_prom_text: OK: self-check passed (stdlib ast fallback)")


def parse_value(text, where):
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: sample value {text!r} is not a number")


def base_family(name):
    """The family a sample belongs to for TYPE-declaration purposes:
    histogram samples use the name with _bucket/_sum/_count stripped."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_text(path, text, required):
    lines = text.splitlines()
    if not any(line.strip() for line in lines):
        fail(f"{path} is empty")

    typed = {}  # family -> declared type
    samples = {}  # exact sample name (no labels) -> value
    buckets = {}  # family -> list of (le, value) in order of appearance
    for number, line in enumerate(lines, start=1):
        where = f"{path}:{number}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"{where}: malformed comment line {line!r}")
            if not NAME_RE.match(parts[2]):
                fail(f"{where}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(f"{where}: TYPE line missing a type")
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    fail(f"{where}: unknown type {parts[3]!r}")
                typed[parts[2]] = parts[3]
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            fail(f"{where}: malformed sample line {line!r}")
        name = match.group("name")
        value = parse_value(match.group("value"), where)
        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                label = LABEL_RE.match(part)
                if not label:
                    fail(f"{where}: malformed label {part!r}")
                labels[label.group("key")] = label.group("value")
        family = base_family(name)
        if name not in typed and family not in typed:
            fail(f"{where}: sample {name!r} has no preceding # TYPE")
        if name.endswith("_bucket"):
            if "le" not in labels:
                fail(f"{where}: histogram bucket without an le label")
            buckets.setdefault(family, []).append((labels["le"], value))
        elif not labels:
            samples[name] = value

    for family, family_buckets in sorted(buckets.items()):
        les = [le for le, _ in family_buckets]
        if les[-1] != "+Inf":
            fail(f"{family}: bucket series does not end at le=\"+Inf\"")
        previous = None
        for le, value in family_buckets:
            if previous is not None and value < previous:
                fail(
                    f"{family}: bucket le=\"{le}\" count {value} below "
                    f"previous {previous} (buckets must be cumulative)"
                )
            previous = value
        count_name = f"{family}_count"
        if count_name not in samples:
            fail(f"{family}: histogram without a _count sample")
        if family_buckets[-1][1] != samples[count_name]:
            fail(
                f"{family}: le=\"+Inf\" bucket {family_buckets[-1][1]} != "
                f"_count {samples[count_name]}"
            )
        if f"{family}_sum" not in samples:
            fail(f"{family}: histogram without a _sum sample")

    for name in required:
        if name not in samples and name not in buckets:
            fail(f"required metric {name!r} not found in {path}")

    print(
        f"check_prom_text: OK: {len(samples)} samples, "
        f"{len(buckets)} histogram(s), {len(typed)} typed families"
    )


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-check":
        self_check()
        return
    args = sys.argv[1:]
    required = []
    paths = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--require":
            if index + 1 >= len(args):
                fail("--require needs a metric name")
            required.append(args[index + 1])
            index += 2
            continue
        if arg.startswith("--require="):
            required.append(arg.split("=", 1)[1])
            index += 1
            continue
        paths.append(arg)
        index += 1
    if len(paths) != 1:
        fail(
            f"usage: {sys.argv[0]} <scrape.txt> [--require NAME]... "
            f"| --self-check"
        )
    path = paths[0]
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        fail(f"cannot read {path}: {error}")
    check_text(path, text, required)


if __name__ == "__main__":
    main()
