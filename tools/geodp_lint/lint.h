// geodp_lint: repo-specific static analysis for the GeoDP codebase.
//
// The DP guarantee rests on invariants the compiler cannot see; this tool
// makes them machine-checked instead of tribal knowledge:
//
//   R1  nondeterminism ban      — all randomness and wall-clock reads must go
//                                 through src/base/rng.* / src/base/timer.*
//                                 (the bit-identical 1-vs-N-thread contract).
//                                 Cpu feature probes (cpuid intrinsics) count:
//                                 they are machine-dependent inputs, and are
//                                 only allowed in the SIMD dispatch layer
//                                 src/base/simd/ under an explicit
//                                 `// geodp: cpuid-ok` annotation.
//   R2  privacy boundary        — identifiers carrying per-sample gradient
//                                 data may only be consumed inside src/clip/;
//                                 elsewhere each use must be annotated
//                                 `// geodp: per-sample` (transport) or
//                                 `// geodp: sensitivity-checked` (post-clip).
//   R3  no CHECK/abort in       — src/ckpt/, src/dp/ and src/optim/trainer*
//       Status-returning paths    report Status; aborts there need an
//                                 explicit `// geodp: check-ok` annotation.
//   R4  header hygiene          — include guard / #pragma once in headers,
//                                 no `using namespace` in headers, and no
//                                 <iostream> in library code (logging, CLIs,
//                                 benches, examples and tests are exempt).
//   R5  raw I/O ban             — library code must not open files directly
//                                 (fopen, std::ofstream/ifstream/fstream,
//                                 ::open): all filesystem writes go through
//                                 src/base/io/ so they get errno
//                                 classification, deterministic retry, and
//                                 fault-injection coverage. Only src/base/io/
//                                 itself may touch the raw syscalls; anywhere
//                                 else needs `// geodp: raw-io-ok` with a
//                                 rationale.
//   R6  reinterpret_cast ban    — type punning is confined to the audited
//                                 helper src/base/byte_view.h (AsBytes /
//                                 AsWritableBytes / FromBytes<T> / PunCast,
//                                 all static_assert-guarded on trivial
//                                 copyability); a raw reinterpret_cast
//                                 anywhere else is a finding.
//   ANN annotation grammar      — a `// geodp: ...` comment that does not
//                                 parse is itself a finding, so a typo never
//                                 silently disables a rule.
//
// R2 has two layers: a name scan (any per-sample-named identifier outside
// src/clip/ needs an annotation) and R2v2, a per-function intraprocedural
// taint pass (dataflow.h) that follows per-sample values through innocently
// named locals to returns, member writes and outgoing calls. Both report
// as [R2].
//
// Any rule can be suppressed on a single line with `// geodp: nolint(Rn)`.
// The analysis runs on a real token stream (tokenizer.h), deliberately
// dependency-free: no libclang, no compilation database needed.

#ifndef GEODP_TOOLS_GEODP_LINT_LINT_H_
#define GEODP_TOOLS_GEODP_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace geodp {
namespace lint {

enum class RuleId {
  kR1Nondeterminism,
  kR2PrivacyBoundary,
  kR3CheckAbort,
  kR4HeaderHygiene,
  kR5RawIo,
  kR6ReinterpretCast,
  kAnnotation,
};

/// Stable short identifier used in output and nolint(): "R1".."R6", "ANN".
const char* RuleIdName(RuleId rule);

struct Finding {
  RuleId rule;
  std::string path;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string message;
};

/// "path:line: [R1] message" — the format asserted by tests and parsed by CI.
std::string FormatFinding(const Finding& finding);

/// Lints `content` as if it lived at repo-relative `path`. Rule
/// applicability (allowlists, library paths) is decided from `path` alone,
/// which is what lets tests feed fixture files under virtual paths.
std::vector<Finding> LintContent(const std::string& path,
                                 std::string_view content);

/// Reads `disk_path` and lints it as repo-relative `path`.
StatusOr<std::vector<Finding>> LintFile(const std::string& disk_path,
                                        const std::string& path);

/// Scans src/, tools/, examples/, bench/ and tests/ under `root` (skipping
/// build*/ and lint_fixtures/) and returns all findings, sorted by path and
/// line.
StatusOr<std::vector<Finding>> LintTree(const std::string& root);

}  // namespace lint
}  // namespace geodp

#endif  // GEODP_TOOLS_GEODP_LINT_LINT_H_
