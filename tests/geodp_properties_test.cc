// Statistical property tests mirroring the paper's §VI-B findings on the
// synthetic gradient dataset: how direction / gradient MSE of DP and GeoDP
// respond to sigma, dimensionality, batch size and beta.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/perturbation.h"
#include "core/spherical.h"
#include "data/gradient_dataset.h"
#include "stats/metrics.h"
#include "tensor/tensor.h"

namespace geodp {
namespace {

struct MsePair {
  double direction = 0.0;
  double gradient = 0.0;
};

// Measures direction and gradient MSE of a perturber over `trials` averaged
// clipped gradients drawn from the dataset.
MsePair MeasureMse(const GradientDataset& data, const Perturber& perturber,
                   int64_t batch, double clip, int trials, uint64_t seed) {
  Rng sample_rng(seed);
  Rng noise_rng(seed + 1);
  std::vector<SphericalCoordinates> original_dirs, perturbed_dirs;
  std::vector<Tensor> original, perturbed;
  for (int t = 0; t < trials; ++t) {
    Tensor avg = data.AverageClipped(batch, clip, sample_rng);
    Tensor noisy = perturber.Perturb(avg, noise_rng);
    original_dirs.push_back(ToSpherical(avg));
    perturbed_dirs.push_back(ToSpherical(noisy));
    original.push_back(std::move(avg));
    perturbed.push_back(std::move(noisy));
  }
  return {DirectionMse(original_dirs, perturbed_dirs),
          GradientMse(original, perturbed)};
}

PerturbationOptions Base(double sigma, int64_t batch) {
  PerturbationOptions base;
  base.clip_threshold = 0.1;
  base.batch_size = batch;
  base.noise_multiplier = sigma;
  return base;
}

class GeoDpMseSweepTest : public ::testing::TestWithParam<int64_t> {
 protected:
  static constexpr int kTrials = 40;
};

TEST_P(GeoDpMseSweepTest, SmallBetaGeoDpBeatsDpOnDirection) {
  const int64_t d = GetParam();
  const GradientDataset data =
      MakeConcentratedGradientDataset(200, d, 0.1, 0.2, 100 + static_cast<uint64_t>(d));
  const int64_t batch = 64;
  const double sigma = 1.0;

  const DpPerturber dp(Base(sigma, batch));
  GeoDpOptions geo_options;
  geo_options.base = Base(sigma, batch);
  geo_options.beta = 0.01;
  const GeoDpPerturber geo(geo_options);

  const MsePair dp_mse = MeasureMse(data, dp, batch, 0.1, kTrials, 7);
  const MsePair geo_mse = MeasureMse(data, geo, batch, 0.1, kTrials, 7);
  EXPECT_LT(geo_mse.direction, dp_mse.direction) << "d=" << d;
}

TEST_P(GeoDpMseSweepTest, LargeBetaHighNoiseFavorsDp) {
  // Figure 3(a)/(d): at beta = 1 with large sigma and enough dimensions,
  // GeoDP's direction error exceeds DP's.
  const int64_t d = GetParam();
  if (d < 64) GTEST_SKIP() << "effect only manifests in higher dimensions";
  const GradientDataset data =
      MakeConcentratedGradientDataset(200, d, 0.1, 0.2, 200 + static_cast<uint64_t>(d));
  const int64_t batch = 64;
  const double sigma = 8.0;

  const DpPerturber dp(Base(sigma, batch));
  GeoDpOptions geo_options;
  geo_options.base = Base(sigma, batch);
  geo_options.beta = 1.0;
  const GeoDpPerturber geo(geo_options);

  const MsePair dp_mse = MeasureMse(data, dp, batch, 0.1, kTrials, 11);
  const MsePair geo_mse = MeasureMse(data, geo, batch, 0.1, kTrials, 11);
  EXPECT_GT(geo_mse.direction, dp_mse.direction) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, GeoDpMseSweepTest,
                         ::testing::Values<int64_t>(16, 64, 256));

TEST(GeoDpMsePropertiesTest, DirectionMseGrowsWithSigma) {
  const GradientDataset data =
      MakeConcentratedGradientDataset(200, 64, 0.1, 0.2, 300);
  double previous = -1.0;
  for (double sigma : {0.01, 0.1, 1.0, 10.0}) {
    GeoDpOptions options;
    options.base = Base(sigma, 64);
    options.beta = 0.1;
    const GeoDpPerturber geo(options);
    const MsePair mse = MeasureMse(data, geo, 64, 0.1, 40, 13);
    EXPECT_GT(mse.direction, previous) << "sigma=" << sigma;
    previous = mse.direction;
  }
}

TEST(GeoDpMsePropertiesTest, GeoDpDirectionMseShrinksWithBatch) {
  // Figure 3(g): batch size reduces GeoDP's direction noise (scale 1/B)...
  const GradientDataset data =
      MakeConcentratedGradientDataset(400, 64, 0.1, 0.2, 400);
  GeoDpOptions small_options, large_options;
  small_options.base = Base(8.0, 64);
  small_options.beta = 0.1;
  large_options.base = Base(8.0, 1024);
  large_options.beta = 0.1;
  const GeoDpPerturber geo_small(small_options);
  const GeoDpPerturber geo_large(large_options);
  const double mse_small =
      MeasureMse(data, geo_small, 64, 0.1, 30, 17).direction;
  const double mse_large =
      MeasureMse(data, geo_large, 1024, 0.1, 30, 17).direction;
  EXPECT_LT(mse_large, mse_small);
}

TEST(GeoDpMsePropertiesTest, DpDirectionMseInsensitiveToBatch) {
  // ...while DP's direction error barely moves: the noise-to-signal ratio
  // on the direction is unchanged because both the averaged gradient and
  // the noise shrink with 1/B only in magnitude, not in relative angle.
  // (Clipped per-sample gradients all have norm ~C here, so the average's
  // norm stays ~C and noise per coordinate scales as 1/B in both cases;
  // what matters is that GeoDP improves *faster* with B than DP.)
  const GradientDataset data =
      MakeConcentratedGradientDataset(400, 64, 0.1, 0.2, 500);
  const DpPerturber dp_small(Base(8.0, 64));
  const DpPerturber dp_large(Base(8.0, 1024));
  GeoDpOptions geo_small_options, geo_large_options;
  geo_small_options.base = Base(8.0, 64);
  geo_small_options.beta = 0.1;
  geo_large_options.base = Base(8.0, 1024);
  geo_large_options.beta = 0.1;
  const GeoDpPerturber geo_small(geo_small_options);
  const GeoDpPerturber geo_large(geo_large_options);

  const double dp_gain = MeasureMse(data, dp_small, 64, 0.1, 30, 19).direction /
                         MeasureMse(data, dp_large, 1024, 0.1, 30, 19).direction;
  const double geo_gain =
      MeasureMse(data, geo_small, 64, 0.1, 30, 19).direction /
      MeasureMse(data, geo_large, 1024, 0.1, 30, 19).direction;
  EXPECT_GT(geo_gain, dp_gain);
}

TEST(GeoDpMsePropertiesTest, Figure1Shape) {
  // GeoDP better preserves directions; DP better preserves raw gradients
  // (at beta where the tradeoff is visible).
  const GradientDataset data =
      MakeConcentratedGradientDataset(300, 128, 0.1, 0.2, 600);
  const double sigma = 1.0;
  const int64_t batch = 64;
  const DpPerturber dp(Base(sigma, batch));
  GeoDpOptions options;
  options.base = Base(sigma, batch);
  options.beta = 0.1;
  const GeoDpPerturber geo(options);

  const MsePair dp_mse = MeasureMse(data, dp, batch, 0.1, 150, 23);
  const MsePair geo_mse = MeasureMse(data, geo, batch, 0.1, 150, 23);
  EXPECT_LT(geo_mse.direction, dp_mse.direction);
}

TEST(GeoDpMsePropertiesTest, BudgetSplitAblationMagnitudeOnly) {
  // Putting all noise on the magnitude (direction_sigma_scale = 0) must
  // give zero direction error.
  const GradientDataset data =
      MakeConcentratedGradientDataset(100, 32, 0.1, 0.2, 700);
  GeoDpOptions options;
  options.base = Base(1.0, 64);
  options.beta = 0.1;
  options.direction_sigma_scale = 0.0;
  const GeoDpPerturber geo(options);
  const MsePair mse = MeasureMse(data, geo, 64, 0.1, 20, 29);
  EXPECT_LT(mse.direction, 1e-10);
  EXPECT_GT(mse.gradient, 0.0);
}

}  // namespace
}  // namespace geodp
