// Privacy ledger: an audit trail of every DP release made during an
// experiment. Components append typed events; the ledger replays them into
// an RDP accountant (or basic composition for Laplace events) and reports
// the composed guarantee. Mirrors the ledger design of practical DP-SGD
// frameworks.

#ifndef GEODP_DP_PRIVACY_LEDGER_H_
#define GEODP_DP_PRIVACY_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.h"
#include "dp/composition.h"

namespace geodp {

/// One recorded mechanism invocation.
struct PrivacyEvent {
  enum class Kind {
    kGaussian,            // full-batch Gaussian release
    kSubsampledGaussian,  // Poisson-subsampled Gaussian release
    kLaplace,             // pure-epsilon Laplace release
  };
  Kind kind = Kind::kGaussian;
  double noise_multiplier = 0.0;  // Gaussian kinds
  double sampling_rate = 1.0;     // subsampled kind
  double epsilon = 0.0;           // Laplace kind
  int64_t count = 1;              // identical repetitions
  std::string note;               // free-form annotation for the audit log
};

/// Append-only event log with composed accounting.
class PrivacyLedger {
 public:
  PrivacyLedger() = default;

  /// Recording APIs take the strong unit types (base/units.h): a sigma,
  /// a sampling rate and a pure-DP epsilon are all small positive doubles
  /// and a transposed pair would corrupt the audit trail silently.
  void RecordGaussian(NoiseMultiplier sigma, int64_t count = 1,
                      std::string note = "");
  void RecordSubsampledGaussian(NoiseMultiplier sigma,
                                SamplingRate sampling_rate,
                                int64_t count = 1, std::string note = "");
  void RecordLaplace(Epsilon epsilon, int64_t count = 1,
                     std::string note = "");

  /// Like RecordSubsampledGaussian, but merges into the previous event
  /// when it has identical parameters (kind, sigma, rate, note) instead of
  /// appending. Per-step training releases then stay O(1) ledger entries
  /// per parameter regime, which keeps checkpoint snapshots small.
  void RecordSubsampledGaussianCoalesced(NoiseMultiplier sigma,
                                         SamplingRate sampling_rate,
                                         std::string note = "");

  /// Checkpoint support: replaces the event log with a restored snapshot.
  void RestoreEvents(std::vector<PrivacyEvent> events);

  const std::vector<PrivacyEvent>& events() const { return events_; }
  int64_t TotalReleases() const;

  /// Composed (epsilon, delta)-DP guarantee of everything recorded:
  /// Gaussian events via the RDP accountant at the given delta, Laplace
  /// events added by basic composition (they are pure epsilon-DP).
  PrivacyGuarantee ComposedGuarantee(Delta delta) const;

  /// RDP order achieving the composed Gaussian epsilon at the given delta
  /// (0 when the ledger holds no Gaussian events).
  int64_t OptimalOrder(Delta delta) const;

  /// Human-readable multi-line audit report. Always states the requested
  /// delta (the guarantee's delta is 0 for a pure-Laplace ledger, which
  /// used to make the report ambiguous about what was asked for) and the
  /// optimal RDP order when Gaussian events are present.
  std::string Report(Delta delta) const;

 private:
  std::vector<PrivacyEvent> events_;
};

}  // namespace geodp

#endif  // GEODP_DP_PRIVACY_LEDGER_H_
