#include "data/dataloader.h"

#include <numeric>

#include "base/check.h"

namespace geodp {

BatchSampler::BatchSampler(int64_t dataset_size, int64_t batch_size,
                           uint64_t seed, bool shuffle)
    : dataset_size_(dataset_size),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  GEODP_CHECK_GT(dataset_size_, 0);
  GEODP_CHECK_GT(batch_size_, 0);
  order_.resize(static_cast<size_t>(dataset_size_));
  std::iota(order_.begin(), order_.end(), 0);
  StartEpoch();
}

void BatchSampler::StartEpoch() {
  if (shuffle_) rng_.Shuffle(order_);
  cursor_ = 0;
}

std::vector<int64_t> BatchSampler::NextBatch() {
  std::vector<int64_t> batch;
  batch.reserve(static_cast<size_t>(batch_size_));
  while (static_cast<int64_t>(batch.size()) < batch_size_) {
    if (cursor_ >= dataset_size_) StartEpoch();
    batch.push_back(order_[static_cast<size_t>(cursor_++)]);
  }
  return batch;
}

PoissonSampler::PoissonSampler(int64_t dataset_size, double sampling_rate,
                               uint64_t seed)
    : dataset_size_(dataset_size), sampling_rate_(sampling_rate), rng_(seed) {
  GEODP_CHECK_GT(dataset_size_, 0);
  GEODP_CHECK(sampling_rate_ > 0.0 && sampling_rate_ <= 1.0);
}

std::vector<int64_t> PoissonSampler::NextBatch() {
  std::vector<int64_t> batch;
  for (int64_t i = 0; i < dataset_size_; ++i) {
    if (rng_.Uniform() < sampling_rate_) batch.push_back(i);
  }
  return batch;
}

}  // namespace geodp
