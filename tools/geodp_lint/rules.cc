#include "geodp_lint/rules.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

namespace geodp {
namespace lint {
namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

// Parses the text of one `// geodp: ...` comment into tags; malformed
// annotations become ANN findings so a typo never silently disables a rule.
void ParseAnnotation(std::string_view text, const std::string& path,
                     int line_number, std::vector<std::string>& tags,
                     std::vector<Finding>& findings) {
  // First whitespace-delimited token is the tag; anything after it is a
  // free-text rationale.
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string_view::npos) begin = text.size();
  size_t end = text.find_first_of(" \t", begin);
  if (end == std::string_view::npos) end = text.size();
  const std::string token(text.substr(begin, end - begin));

  if (token == "per-sample" || token == "sensitivity-checked" ||
      token == "check-ok" || token == "cpuid-ok" || token == "raw-io-ok") {
    tags.push_back(token);
    return;
  }
  if (StartsWith(token, "nolint(") && EndsWith(token, ")")) {
    const std::string list = token.substr(7, token.size() - 8);
    std::istringstream stream(list);
    std::string rule;
    bool any = false;
    bool ok = true;
    while (std::getline(stream, rule, ',')) {
      if (rule == "R1" || rule == "R2" || rule == "R3" || rule == "R4" ||
          rule == "R5" || rule == "R6") {
        tags.push_back("nolint:" + rule);
        any = true;
      } else {
        ok = false;
      }
    }
    if (ok && any) return;
  }
  findings.push_back(
      {RuleId::kAnnotation, path, line_number,
       "unrecognized geodp annotation '" + token +
           "' (expected per-sample, sensitivity-checked, check-ok, "
           "cpuid-ok, raw-io-ok, or nolint(R1[,R2,...]))"});
}

// R1: identifiers that are nondeterministic by construction. The *_call
// set additionally requires a call so e.g. a variable named `time` in a
// declaration does not trip the rule.
constexpr std::array<std::string_view, 11> kNondetIdentifiers = {
    "random_device",  "mt19937",        "mt19937_64",
    "minstd_rand",    "minstd_rand0",   "default_random_engine",
    "knuth_b",        "ranlux24",       "ranlux24_base",
    "ranlux48",       "ranlux48_base"};
constexpr std::array<std::string_view, 5> kNondetCalls = {
    "rand", "srand", "time", "clock", "gettimeofday"};

// R1: cpu feature probes make behavior machine-dependent (a different host
// dispatches different kernels). Allowed only in the SIMD dispatch layer
// under an explicit `// geodp: cpuid-ok` annotation, so every probe stays
// auditable.
constexpr std::array<std::string_view, 8> kCpuidIdentifiers = {
    "__builtin_cpu_supports", "__builtin_cpu_init",
    "__get_cpuid",            "__get_cpuid_count",
    "__cpuid",                "__cpuid_count",
    "_xgetbv",                "_may_i_use_cpu_feature"};

constexpr std::array<std::string_view, 4> kPerSamplePatterns = {
    "per_sample", "per_example", "sample_grad", "ghost_norm"};

constexpr std::array<std::string_view, 4> kAbortCalls = {"abort", "_Exit",
                                                         "quick_exit", "exit"};

// R5: direct file-opening entry points. The stream types trip on any
// mention (a member declaration is already a bypass of the I/O substrate);
// the C functions must be calls; bare `open` must be a global-namespace
// call (`::open`) so methods like `writer.Open()` stay legal.
constexpr std::array<std::string_view, 3> kRawIoStreamTypes = {
    "ofstream", "ifstream", "fstream"};
constexpr std::array<std::string_view, 2> kRawIoCalls = {"fopen", "freopen"};

template <typename Container>
bool Contains(const Container& container, std::string_view value) {
  return std::find(container.begin(), container.end(), value) !=
         container.end();
}

}  // namespace

AnnotatedSource BuildAnnotatedSource(const std::string& path,
                                     const std::vector<Token>& tokens) {
  AnnotatedSource source;
  int last_code_line = 0;  // line of the most recent non-comment token
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment) {
      source.code.push_back(token);
      last_code_line = token.line;
      continue;
    }
    if (token.text.substr(0, 2) != "//") continue;  // block comments: no tags
    const std::string_view comment = std::string_view(token.text).substr(2);
    const size_t tag = comment.find("geodp:");
    // Prose mentioning qualified names ("geodp::Rng") is not an
    // annotation; require `geodp:` followed by a non-colon.
    if (tag == std::string_view::npos ||
        comment.find_first_not_of(" \t") != tag ||
        (tag + 6 < comment.size() && comment[tag + 6] == ':')) {
      continue;
    }
    // A trailing annotation guards its own line; an annotation on a
    // comment-only line guards the next line.
    const int target =
        last_code_line == token.line ? token.line : token.line + 1;
    ParseAnnotation(comment.substr(tag + 6), path, token.line,
                    source.tags[target], source.annotation_findings);
  }
  return source;
}

bool LineHasTag(const AnnotatedSource& source, int line,
                std::string_view tag) {
  const auto it = source.tags.find(line);
  if (it == source.tags.end()) return false;
  return std::find(it->second.begin(), it->second.end(), tag) !=
         it->second.end();
}

bool LineSuppressed(const AnnotatedSource& source, int line, RuleId rule) {
  return LineHasTag(source, line, std::string("nolint:") + RuleIdName(rule));
}

PathInfo ClassifyPath(const std::string& path) {
  PathInfo info;
  info.is_header = EndsWith(path, ".h");
  info.in_src = StartsWith(path, "src/");

  static constexpr std::array<std::string_view, 4> kR1Allowlist = {
      "src/base/rng.h", "src/base/rng.cc", "src/base/timer.h",
      "src/base/timer.cc"};
  const bool allowlisted = Contains(kR1Allowlist, path);
  info.r1_applies = (info.in_src || StartsWith(path, "tools/") ||
                     StartsWith(path, "examples/")) &&
                    !allowlisted;

  info.r2_applies = info.in_src && !StartsWith(path, "src/clip/");
  info.in_simd_dispatch = StartsWith(path, "src/base/simd/");
  // src/clip/ joined R3 when ClipAndSum gained defined empty-lot behavior:
  // the clipping boundary sits on the trainer's Status path, so residual
  // aborts there must be annotated internal invariants.
  info.r3_applies = StartsWith(path, "src/ckpt/") ||
                    StartsWith(path, "src/dp/") ||
                    StartsWith(path, "src/clip/") ||
                    StartsWith(path, "src/optim/trainer");
  info.iostream_banned = info.in_src && path != "src/base/check.h";
  info.r5_applies = info.in_src && !StartsWith(path, "src/base/io/");
  info.r6_applies = path != "src/base/byte_view.h";
  return info;
}

bool IsPerSampleIdentifier(std::string_view ident) {
  for (const std::string_view pattern : kPerSamplePatterns) {
    if (ident.find(pattern) != std::string_view::npos) return true;
  }
  return false;
}

void CheckTokenRules(const std::string& path, const PathInfo& info,
                     const AnnotatedSource& source,
                     std::vector<Finding>& findings) {
  const std::vector<Token>& code = source.code;

  // Lines whose first code token is '#'. R5 exempts them: `#include
  // <fstream>` mentions the type without opening anything.
  std::set<int> preprocessor_lines;
  {
    int last_line = 0;
    for (const Token& token : code) {
      if (token.line != last_line) {
        last_line = token.line;
        if (token.Is("#")) preprocessor_lines.insert(token.line);
      }
    }
  }

  // R4a: headers need an include guard or #pragma once.
  if (info.is_header) {
    bool guarded = false;
    for (size_t i = 0; i < code.size(); ++i) {
      if (!code[i].Is("#") || preprocessor_lines.count(code[i].line) == 0) {
        continue;
      }
      if (i + 2 < code.size() && code[i + 1].IsIdent("pragma") &&
          code[i + 2].IsIdent("once")) {
        guarded = true;
        break;
      }
      if (i + 1 < code.size() && code[i + 1].IsIdent("ifndef")) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      findings.push_back({RuleId::kR4HeaderHygiene, path, 1,
                          "header has neither an include guard (#ifndef) nor "
                          "#pragma once"});
    }
  }

  // One finding per rule per line: a line mentioning two nondeterministic
  // identifiers is one problem, not two.
  int r1_line = 0, r2_line = 0, r3_line = 0, r5_line = 0, r6_line = 0;

  const auto next_is_call = [&code](size_t i) {
    return i + 1 < code.size() && code[i + 1].Is("(");
  };

  for (size_t i = 0; i < code.size(); ++i) {
    const Token& token = code[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    const std::string_view ident = token.text;
    const int line = token.line;

    if (info.r1_applies && r1_line != line &&
        !LineSuppressed(source, line, RuleId::kR1Nondeterminism)) {
      const bool named = Contains(kNondetIdentifiers, ident);
      const bool called = Contains(kNondetCalls, ident) && next_is_call(i);
      const bool clock_now =
          ident == "now" && next_is_call(i) && i > 0 && code[i - 1].Is("::");
      const bool cpuid = Contains(kCpuidIdentifiers, ident) &&
                         !(info.in_simd_dispatch &&
                           LineHasTag(source, line, "cpuid-ok"));
      if (named || called || clock_now || cpuid) {
        r1_line = line;
        findings.push_back(
            {RuleId::kR1Nondeterminism, path, line,
             cpuid ? "cpu feature probe '" + std::string(ident) +
                         "' — hardware dispatch is only allowed in "
                         "src/base/simd/ under `// geodp: cpuid-ok`"
                   : "nondeterministic source '" + std::string(ident) +
                         "' — use the seeded xoshiro256++ substreams in "
                         "src/base/rng.h (or geodp::Timer for wall-clock)"});
      }
    }

    if (info.r2_applies && r2_line != line &&
        !LineSuppressed(source, line, RuleId::kR2PrivacyBoundary) &&
        !LineHasTag(source, line, "per-sample") &&
        !LineHasTag(source, line, "sensitivity-checked") &&
        IsPerSampleIdentifier(ident)) {
      r2_line = line;
      findings.push_back(
          {RuleId::kR2PrivacyBoundary, path, line,
           "per-sample gradient identifier '" + std::string(ident) +
               "' outside src/clip/ — clip before aggregation and "
               "annotate `// geodp: per-sample` (transport) or "
               "`// geodp: sensitivity-checked` (post-clip use)"});
    }

    if (info.r3_applies && r3_line != line &&
        !LineSuppressed(source, line, RuleId::kR3CheckAbort) &&
        !LineHasTag(source, line, "check-ok")) {
      const bool check = StartsWith(ident, "GEODP_CHECK");
      const bool aborts = Contains(kAbortCalls, ident) && next_is_call(i);
      if (check || aborts) {
        r3_line = line;
        findings.push_back(
            {RuleId::kR3CheckAbort, path, line,
             "'" + std::string(ident) +
                 "' in a Status-returning library path — return "
                 "geodp::Status, or annotate a true internal invariant "
                 "with `// geodp: check-ok`"});
      }
    }

    // R4b: using-directives in headers leak into every includer.
    if (info.is_header &&
        !LineSuppressed(source, line, RuleId::kR4HeaderHygiene) &&
        ident == "using" && i + 1 < code.size() &&
        code[i + 1].IsIdent("namespace")) {
      findings.push_back({RuleId::kR4HeaderHygiene, path, line,
                          "`using namespace` in a header leaks into every "
                          "translation unit that includes it"});
    }

    // R4c: <iostream> drags static initializers into library code.
    if (info.iostream_banned &&
        !LineSuppressed(source, line, RuleId::kR4HeaderHygiene) &&
        ident == "include" && preprocessor_lines.count(line) != 0 &&
        i + 2 < code.size() && code[i + 1].Is("<") &&
        code[i + 2].IsIdent("iostream")) {
      findings.push_back({RuleId::kR4HeaderHygiene, path, line,
                          "<iostream> outside logging/CLI/tools — library "
                          "code logs via base/check.h or returns Status"});
    }

    if (info.r5_applies && r5_line != line &&
        preprocessor_lines.count(line) == 0 &&
        !LineSuppressed(source, line, RuleId::kR5RawIo) &&
        !LineHasTag(source, line, "raw-io-ok")) {
      const bool stream_type = Contains(kRawIoStreamTypes, ident);
      const bool c_call = Contains(kRawIoCalls, ident) && next_is_call(i);
      const bool global_open =
          ident == "open" && next_is_call(i) && i > 0 &&
          code[i - 1].Is("::") &&
          (i < 2 || code[i - 2].kind != TokenKind::kIdentifier);
      if (stream_type || c_call || global_open) {
        r5_line = line;
        findings.push_back(
            {RuleId::kR5RawIo, path, line,
             "raw file I/O '" + std::string(ident) +
                 "' outside src/base/io/ — use ReadFileWithRetry / "
                 "AtomicWriteFile / RetryingWriter (base/io/file_io.h) "
                 "so the write gets retry, errno classification and "
                 "fault-injection coverage, or annotate "
                 "`// geodp: raw-io-ok` with a rationale"});
      }
    }

    if (info.r6_applies && r6_line != line &&
        !LineSuppressed(source, line, RuleId::kR6ReinterpretCast) &&
        ident == "reinterpret_cast") {
      r6_line = line;
      findings.push_back(
          {RuleId::kR6ReinterpretCast, path, line,
           "reinterpret_cast outside src/base/byte_view.h — use AsBytes / "
           "AsWritableBytes / FromBytes<T> / PunCast from base/byte_view.h "
           "so every type pun stays behind the audited, "
           "static_assert-guarded helper"});
    }
  }
}

}  // namespace lint
}  // namespace geodp
