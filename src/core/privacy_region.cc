#include "core/privacy_region.h"

#include <cmath>

#include "base/check.h"
#include "dp/gaussian_mechanism.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

DirectionSensitivity ComputeDirectionSensitivity(int64_t dimension,
                                                 double beta) {
  GEODP_CHECK_GE(dimension, 2);
  GEODP_CHECK(beta > 0.0 && beta <= 1.0) << "beta must be in (0, 1]";
  DirectionSensitivity s;
  s.per_angle = beta * kPi;
  s.last_angle = 2.0 * beta * kPi;
  s.total_l2 = std::sqrt(static_cast<double>(dimension) + 2.0) * beta * kPi;
  return s;
}

GeoDpPrivacyReport AnalyzeGeoDpPrivacy(double noise_multiplier, double delta,
                                       double beta) {
  GEODP_CHECK(beta > 0.0 && beta <= 1.0);
  GeoDpPrivacyReport report;
  report.epsilon = GaussianEpsilonForSigma(noise_multiplier, delta);
  report.delta = delta;
  report.delta_prime_upper_bound = 1.0 - beta;
  report.total_delta_upper_bound = delta + report.delta_prime_upper_bound;
  return report;
}

}  // namespace geodp
