// Figure 3(g)-(i): direction and gradient MSE of GeoDP vs DP as the batch
// size sweeps, at beta in {1, 0.1, 0.01}.
// Expected shape: GeoDP's direction error falls with B (noise scale has a
// 1/B factor); DP's direction error barely improves with B, matching
// Corollary 2 — batch size cannot fix DP's directional noise.

#include <cstdint>

#include "common/bench_util.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Figure 3(g)-(i) (MSE vs batch size B)",
      "d=10000, sigma=8, B in {512..16384}, beta in {1, 0.1, 0.01}",
      "d=1024, sigma=8, B in {64..2048}, C=0.1, 16 trials");

  const int64_t kDim = 1024;
  const double kClip = 0.1;
  const double kSigma = 8.0;
  const int kTrials = 16;

  const GradientDataset data = HarvestedGradients(kDim, /*count=*/384);

  TablePrinter table({"beta", "B", "GeoDP theta MSE", "DP theta MSE",
                      "GeoDP g MSE", "DP g MSE"});
  for (double beta : {1.0, 0.1, 0.01}) {
    for (int64_t batch : {64, 128, 256, 512, 1024, 2048}) {
      const auto geo = MakeGeo(kClip, batch, kSigma, beta);
      const auto dp = MakeDp(kClip, batch, kSigma);
      const MseResult geo_mse =
          MeasurePerturbationMse(data, *geo, batch, kClip, kTrials, 29);
      const MseResult dp_mse =
          MeasurePerturbationMse(data, *dp, batch, kClip, kTrials, 29);
      table.AddRow({TablePrinter::Fmt(beta, 2), std::to_string(batch),
                    TablePrinter::FmtSci(geo_mse.direction_mse),
                    TablePrinter::FmtSci(dp_mse.direction_mse),
                    TablePrinter::FmtSci(geo_mse.gradient_mse),
                    TablePrinter::FmtSci(dp_mse.gradient_mse)});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
