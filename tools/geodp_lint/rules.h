// Rule layer of geodp_lint: `// geodp:` annotation parsing, repo-relative
// path classification, and the token-stream checks for rules R1-R6 (the
// per-function taint pass behind R2v2 lives in dataflow.h). See lint.h for
// the rule catalogue and docs/static_analysis.md for the contract.

#ifndef GEODP_TOOLS_GEODP_LINT_RULES_H_
#define GEODP_TOOLS_GEODP_LINT_RULES_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "geodp_lint/lint.h"
#include "geodp_lint/tokenizer.h"

namespace geodp {
namespace lint {

/// Token stream with annotations resolved: `code` is the stream minus
/// comments, `tags` maps a 1-based line number to the geodp annotation
/// tags that apply to it ("per-sample", "nolint:R1", ...). An annotation
/// on a comment-only line applies to the following line; a trailing
/// annotation applies to its own line. Malformed annotations surface in
/// `annotation_findings` so a typo never silently disables a rule.
struct AnnotatedSource {
  std::vector<Token> code;
  std::map<int, std::vector<std::string>> tags;
  std::vector<Finding> annotation_findings;
};

AnnotatedSource BuildAnnotatedSource(const std::string& path,
                                     const std::vector<Token>& tokens);

bool LineHasTag(const AnnotatedSource& source, int line,
                std::string_view tag);
bool LineSuppressed(const AnnotatedSource& source, int line, RuleId rule);

/// Which rules apply to a file, decided from its repo-relative path alone
/// (this is what lets tests lint fixtures under virtual paths).
struct PathInfo {
  bool is_header = false;
  bool in_src = false;
  // R1: every deterministic-contract surface (library, CLIs, examples);
  // tests and benches may use local clocks and ad-hoc randomness.
  bool r1_applies = false;
  bool r2_applies = false;  // src/ outside src/clip/ (also scopes R2v2)
  bool r3_applies = false;  // src/ckpt/, src/dp/, src/clip/, trainer*
  // The one place `// geodp: cpuid-ok` may authorize a cpu feature probe.
  bool in_simd_dispatch = false;  // src/base/simd/
  bool iostream_banned = false;
  // R5: raw file I/O is confined to src/base/io/ so every filesystem
  // touch gets retry, errno classification and fault-injection coverage.
  bool r5_applies = false;  // src/ outside src/base/io/
  // R6: reinterpret_cast is confined to the audited byte-view helper.
  bool r6_applies = false;  // everywhere except src/base/byte_view.h
};

PathInfo ClassifyPath(const std::string& path);

/// Identifier substrings that mark a value as per-sample gradient data.
/// Shared with the taint pass: these are its taint sources.
/// "ghost_norm" covers the ghost-clipping bookkeeping (per-sample squared
/// gradient norms computed without materializing the gradient): the values
/// are exactly as privacy-sensitive as the gradients they summarize.
bool IsPerSampleIdentifier(std::string_view ident);

/// Runs R1-R6 (including the R4 header-guard check for headers) over the
/// annotated token stream and appends findings.
void CheckTokenRules(const std::string& path, const PathInfo& info,
                     const AnnotatedSource& source,
                     std::vector<Finding>& findings);

}  // namespace lint
}  // namespace geodp

#endif  // GEODP_TOOLS_GEODP_LINT_RULES_H_
