// Binary serialization of tensors: a small versioned little-endian format
// ("GDPT"): magic, version, ndim, extents, raw float32 data, and (since
// v2) an integrity trailer — payload length + CRC-32 — so truncated or
// bit-flipped files fail with a clear Status instead of yielding garbage.
// v1 files (no trailer) remain readable. Used by model checkpoints and by
// experiment result caching.

#ifndef GEODP_TENSOR_SERIALIZATION_H_
#define GEODP_TENSOR_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "base/status.h"
#include "tensor/tensor.h"

namespace geodp {

/// Writes the tensor to the stream. Returns non-OK on stream failure.
Status WriteTensor(const Tensor& tensor, std::ostream& out);

/// Reads a tensor previously written by WriteTensor.
StatusOr<Tensor> ReadTensor(std::istream& in);

/// Convenience file round-trips.
Status SaveTensorToFile(const Tensor& tensor, const std::string& path);
StatusOr<Tensor> LoadTensorFromFile(const std::string& path);

}  // namespace geodp

#endif  // GEODP_TENSOR_SERIALIZATION_H_
